#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/config.hpp"
#include "core/runtime.hpp"
#include "core/worker.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"
#include "util/bytes.hpp"

namespace ea::core {
namespace {

using namespace std::chrono_literals;

// Polls `pred` until true or the deadline expires.
bool eventually(std::function<bool()> pred, std::chrono::milliseconds limit = 5s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
  }
  sgxsim::ScopedCostModel scoped_;
};

// --- Channel unit behaviour (driven manually, no workers) -------------------

TEST_F(CoreTest, ChannelPlainWhenBothUntrusted) {
  Runtime rt;
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ChannelEnd* b = ch.connect(sgxsim::kUntrusted);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(ch.encrypted());

  EXPECT_TRUE(a->send("hello"));
  EXPECT_TRUE(b->pending());
  auto msg = b->recv();
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->view(), "hello");
}

TEST_F(CoreTest, ChannelPlainWithinSameEnclave) {
  Runtime rt;
  sgxsim::Enclave& e = rt.enclave("same");
  Channel& ch = rt.channel("c");
  ch.connect(e.id());
  ch.connect(e.id());
  EXPECT_FALSE(ch.encrypted());
}

TEST_F(CoreTest, ChannelEncryptedAcrossEnclaves) {
  Runtime rt;
  sgxsim::Enclave& e1 = rt.enclave("enc1");
  sgxsim::Enclave& e2 = rt.enclave("enc2");
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(e1.id());
  ChannelEnd* b = ch.connect(e2.id());
  EXPECT_TRUE(ch.encrypted());

  EXPECT_TRUE(a->send("secret"));
  auto msg = b->recv();
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->view(), "secret");
}

TEST_F(CoreTest, ChannelMixedEnclaveUntrustedStaysPlain) {
  // Encrypting towards an untrusted endpoint is pointless — the key would
  // live in untrusted memory anyway (paper's XMPP design discussion).
  Runtime rt;
  sgxsim::Enclave& e = rt.enclave("half");
  Channel& ch = rt.channel("c");
  ch.connect(e.id());
  ch.connect(sgxsim::kUntrusted);
  EXPECT_FALSE(ch.encrypted());
}

TEST_F(CoreTest, ChannelForcePlainOverridesEncryption) {
  Runtime rt;
  sgxsim::Enclave& e1 = rt.enclave("fp1");
  sgxsim::Enclave& e2 = rt.enclave("fp2");
  ChannelOptions options;
  options.force_plain = true;
  Channel& ch = rt.channel("c", options);
  ch.connect(e1.id());
  ch.connect(e2.id());
  EXPECT_FALSE(ch.encrypted());
}

TEST_F(CoreTest, ChannelEncryptedWireNotPlaintext) {
  // Peek at the raw node to prove the payload is actually ciphertext.
  Runtime rt;
  sgxsim::Enclave& e1 = rt.enclave("wire1");
  sgxsim::Enclave& e2 = rt.enclave("wire2");
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(e1.id());
  ChannelEnd* b = ch.connect(e2.id());

  std::string plaintext = "very secret plaintext";
  ASSERT_TRUE(a->send(plaintext));
  // Receive through the decrypting path and confirm round-trip...
  auto msg = b->recv();
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->view(), plaintext);

  // ...and prove a fresh send's raw wire bytes differ from the plaintext.
  ASSERT_TRUE(a->send(plaintext));
  // b's incoming mbox is dir_[0]; sneak in via a second recv that we
  // intercept before decryption by sending on a plain channel with the
  // same payload and comparing sizes: the encrypted node must be larger.
  auto msg2 = b->recv();
  ASSERT_TRUE(msg2);
  EXPECT_EQ(msg2->view(), plaintext);
}

TEST_F(CoreTest, ChannelBidirectional) {
  Runtime rt;
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ChannelEnd* b = ch.connect(sgxsim::kUntrusted);
  a->send("ping");
  b->send("pong");
  EXPECT_EQ(b->recv()->view(), "ping");
  EXPECT_EQ(a->recv()->view(), "pong");
}

TEST_F(CoreTest, ChannelThirdConnectRejected) {
  Runtime rt;
  Channel& ch = rt.channel("c");
  ch.connect(sgxsim::kUntrusted);
  ch.connect(sgxsim::kUntrusted);
  EXPECT_EQ(ch.connect(sgxsim::kUntrusted), nullptr);
}

TEST_F(CoreTest, ChannelRecvEmptyReturnsNullLease) {
  Runtime rt;
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ch.connect(sgxsim::kUntrusted);
  EXPECT_FALSE(a->recv());
  EXPECT_FALSE(a->pending());
}

TEST_F(CoreTest, ChannelNodesReturnToPool) {
  RuntimeOptions options;
  options.pool_nodes = 8;
  Runtime rt(options);
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ChannelEnd* b = ch.connect(sgxsim::kUntrusted);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->send("x")) << "iteration " << i;
    auto msg = b->recv();
    ASSERT_TRUE(msg);
  }
  EXPECT_EQ(rt.public_pool().size(), 8u);
}

TEST_F(CoreTest, ChannelSendFailsWhenPoolExhausted) {
  RuntimeOptions options;
  options.pool_nodes = 2;
  Runtime rt(options);
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ch.connect(sgxsim::kUntrusted);
  EXPECT_TRUE(a->send("1"));
  EXPECT_TRUE(a->send("2"));
  EXPECT_FALSE(a->send("3"));
}

TEST_F(CoreTest, ChannelOversizedMessageRejected) {
  RuntimeOptions options;
  options.node_payload_bytes = 64;
  Runtime rt(options);
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ch.connect(sgxsim::kUntrusted);
  std::string big(65, 'x');
  EXPECT_FALSE(a->send(big));
  // The node taken for the attempt must have been returned.
  EXPECT_EQ(rt.public_pool().size(), options.pool_nodes);
}

// --- Actor + worker integration ---------------------------------------------

class PingActor : public Actor {
 public:
  PingActor(std::string name, int rounds)
      : Actor(std::move(name)), rounds_(rounds) {}

  void construct(Runtime&) override {
    out_ = connect("ping2pong");
    in_ = connect("pong2ping");
    first_ = true;
  }

  bool body() override {
    if (first_) {
      first_ = false;
      out_->send("ping");
      return true;
    }
    if (auto msg = in_->recv()) {
      ++received_;
      if (received_ < rounds_) out_->send("ping");
      return true;
    }
    return false;
  }

  int received() const noexcept { return received_; }

 private:
  ChannelEnd* out_ = nullptr;
  ChannelEnd* in_ = nullptr;
  bool first_ = true;
  int rounds_;
  std::atomic<int> received_{0};
};

class PongActor : public Actor {
 public:
  using Actor::Actor;

  void construct(Runtime&) override {
    in_ = connect("ping2pong");
    out_ = connect("pong2ping");
  }

  bool body() override {
    if (auto msg = in_->recv()) {
      EXPECT_EQ(msg->view(), "ping");
      out_->send("pong");
      return true;
    }
    return false;
  }

 private:
  ChannelEnd* in_ = nullptr;
  ChannelEnd* out_ = nullptr;
};

TEST_F(CoreTest, PingPongUntrustedWorkers) {
  Runtime rt;
  auto ping = std::make_unique<PingActor>("ping", 100);
  PingActor* ping_ptr = ping.get();
  rt.add_actor(std::move(ping));
  rt.add_actor(std::make_unique<PongActor>("pong"));
  rt.add_worker("w1", {0}, {"ping"});
  rt.add_worker("w2", {1}, {"pong"});
  rt.start();
  EXPECT_TRUE(eventually([&] { return ping_ptr->received() >= 100; }));
  rt.stop();
}

TEST_F(CoreTest, PingPongAcrossEnclavesEncrypted) {
  Runtime rt;
  auto ping = std::make_unique<PingActor>("ping", 50);
  PingActor* ping_ptr = ping.get();
  rt.add_actor(std::move(ping), "e-ping");
  rt.add_actor(std::make_unique<PongActor>("pong"), "e-pong");
  rt.add_worker("w1", {0}, {"ping"});
  rt.add_worker("w2", {1}, {"pong"});
  rt.start();
  EXPECT_TRUE(rt.channel("ping2pong").encrypted());
  EXPECT_TRUE(rt.channel("pong2ping").encrypted());
  EXPECT_TRUE(eventually([&] { return ping_ptr->received() >= 50; }));
  rt.stop();
}

TEST_F(CoreTest, SingleEnclaveWorkerStaysInside) {
  // A worker whose actors all live in one enclave must enter exactly once,
  // regardless of how many activations happen — the EActors fast path.
  Runtime rt;
  auto ping = std::make_unique<PingActor>("ping", 50);
  PingActor* ping_ptr = ping.get();
  rt.add_actor(std::move(ping), "shared-encl");
  rt.add_actor(std::make_unique<PongActor>("pong"), "shared-encl");
  rt.add_worker("w", {0}, {"ping", "pong"});

  sgxsim::reset_transition_stats();
  rt.start();
  EXPECT_TRUE(eventually([&] { return ping_ptr->received() >= 50; }));
  rt.stop();

  // start(): 2 constructor ecalls; worker: 1 entry. No per-message calls.
  EXPECT_LE(sgxsim::transition_stats().ecalls, 4u);
}

TEST_F(CoreTest, MixedWorkerMigratesEveryRound) {
  Runtime rt;
  auto ping = std::make_unique<PingActor>("ping", 10);
  PingActor* ping_ptr = ping.get();
  rt.add_actor(std::move(ping), "mix-a");
  rt.add_actor(std::make_unique<PongActor>("pong"), "mix-b");
  rt.add_worker("w", {0}, {"ping", "pong"});

  sgxsim::reset_transition_stats();
  rt.start();
  EXPECT_TRUE(eventually([&] { return ping_ptr->received() >= 10; }));
  rt.stop();

  // The migrating worker pays transitions proportional to its rounds.
  EXPECT_GT(sgxsim::transition_stats().ecalls, 20u);
}

// --- idle backoff -----------------------------------------------------------

TEST(IdleBackoffTest, RampsYieldsThenExponentialSleepCapped) {
  IdleBackoff b;
  // First kYieldRounds idle rounds are plain yields (no sleeping).
  for (int i = 0; i < IdleBackoff::kYieldRounds; ++i) {
    EXPECT_EQ(b.next_idle(), 0u) << "round " << i;
  }
  // Then the sleep doubles from the minimum up to the cap and stays there.
  std::uint32_t expected = IdleBackoff::kMinSleepUs;
  std::uint32_t last = 0;
  for (int i = 0; i < 12; ++i) {
    last = b.next_idle();
    EXPECT_EQ(last, expected) << "step " << i;
    expected = std::min(expected * 2, IdleBackoff::kMaxSleepUs);
  }
  EXPECT_EQ(last, IdleBackoff::kMaxSleepUs);
  EXPECT_EQ(b.next_idle(), IdleBackoff::kMaxSleepUs);
}

TEST(IdleBackoffTest, ProgressResetsTheRamp) {
  IdleBackoff b;
  for (int i = 0; i < IdleBackoff::kYieldRounds + 5; ++i) b.next_idle();
  b.reset();
  for (int i = 0; i < IdleBackoff::kYieldRounds; ++i) {
    EXPECT_EQ(b.next_idle(), 0u) << "round " << i;
  }
  EXPECT_EQ(b.next_idle(), IdleBackoff::kMinSleepUs);
}

// An actor that never makes progress: its worker rides the backoff ramp
// into the sleep phase.
class IdleActor : public Actor {
 public:
  using Actor::Actor;
  void construct(Runtime&) override {}
  bool body() override { return false; }
};

TEST_F(CoreTest, AllIdleWorkerObservesStopPromptly) {
  Runtime rt;
  rt.add_actor(std::make_unique<IdleActor>("idle"));
  rt.add_worker("w", {0}, {"idle"});
  rt.start();
  // Let the worker ramp all the way to the sleep cap.
  std::this_thread::sleep_for(100ms);
  const auto t0 = std::chrono::steady_clock::now();
  rt.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The nap length is bounded by kMaxSleepUs (1 ms); the generous bound
  // here only has to rule out unbounded sleeping, not measure latency.
  EXPECT_LT(elapsed, 2s);
}

TEST_F(CoreTest, AddActorAfterStartThrows) {
  Runtime rt;
  rt.add_actor(std::make_unique<PongActor>("pong"));
  rt.add_worker("w", {}, {"pong"});
  rt.start();
  EXPECT_THROW(rt.add_actor(std::make_unique<PongActor>("late")),
               std::logic_error);
  rt.stop();
}

TEST_F(CoreTest, WorkerWithUnknownActorThrows) {
  Runtime rt;
  EXPECT_THROW(rt.add_worker("w", {}, {"ghost"}), std::invalid_argument);
}

// --- DeploymentConfig ----------------------------------------------------------

TEST(ConfigTest, ParsesFullGrammar) {
  auto config = DeploymentConfig::parse(R"(
# comment line
pool nodes=128 payload=512
enclave e1
enclave e2
actor ping type=ping enclave=e1
actor pong type=pong enclave=e2  # trailing comment
worker w1 cpus=0,1 actors=ping
worker w2 cpus=2 actors=pong
channel c1 plain
channel c2
)");
  EXPECT_EQ(config.runtime.pool_nodes, 128u);
  EXPECT_EQ(config.runtime.node_payload_bytes, 512u);
  ASSERT_EQ(config.enclaves.size(), 2u);
  ASSERT_EQ(config.actors.size(), 2u);
  EXPECT_EQ(config.actors[0].name, "ping");
  EXPECT_EQ(config.actors[0].type, "ping");
  EXPECT_EQ(config.actors[0].enclave, "e1");
  ASSERT_EQ(config.workers.size(), 2u);
  EXPECT_EQ(config.workers[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(config.workers[0].actors, (std::vector<std::string>{"ping"}));
  ASSERT_EQ(config.channels.size(), 2u);
  EXPECT_TRUE(config.channels[0].force_plain);
  EXPECT_FALSE(config.channels[1].force_plain);
}

TEST(ConfigTest, SchedDirectiveSelectsScheduler) {
  EXPECT_EQ(DeploymentConfig::parse("sched steal").runtime.sched,
            SchedMode::kSteal);
  EXPECT_EQ(DeploymentConfig::parse("sched static").runtime.sched,
            SchedMode::kStatic);
  EXPECT_EQ(DeploymentConfig::parse("sched mode=steal").runtime.sched,
            SchedMode::kSteal);
  // Default: deployments that don't mention sched keep the paper's fixed
  // static mapping.
  EXPECT_EQ(DeploymentConfig::parse("enclave e1").runtime.sched,
            SchedMode::kStatic);
}

TEST(ConfigTest, SchedDirectiveRejectsBadMode) {
  EXPECT_THROW(DeploymentConfig::parse("sched"), std::invalid_argument);
  EXPECT_THROW(DeploymentConfig::parse("sched greedy"), std::invalid_argument);
  EXPECT_THROW(DeploymentConfig::parse("sched policy=steal"),
               std::invalid_argument);
  try {
    DeploymentConfig::parse("pool nodes=64\nsched greedy\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("greedy"), std::string::npos);
  }
}

TEST(ConfigTest, NetDirectiveSelectsNetworkPlane) {
  EXPECT_EQ(DeploymentConfig::parse("net epoll").runtime.net,
            NetMode::kEpoll);
  EXPECT_EQ(DeploymentConfig::parse("net scan").runtime.net, NetMode::kScan);
  EXPECT_EQ(DeploymentConfig::parse("net mode=epoll").runtime.net,
            NetMode::kEpoll);
  // Default: deployments that don't mention net keep the paper's per-round
  // socket sweep (the ablation baseline, like sched=static).
  EXPECT_EQ(DeploymentConfig::parse("enclave e1").runtime.net,
            NetMode::kScan);
  EXPECT_EQ(RuntimeOptions{}.net, NetMode::kScan);
}

TEST(ConfigTest, NetDirectiveRejectsBadMode) {
  EXPECT_THROW(DeploymentConfig::parse("net"), std::invalid_argument);
  EXPECT_THROW(DeploymentConfig::parse("net poll"), std::invalid_argument);
  EXPECT_THROW(DeploymentConfig::parse("net plane=epoll"),
               std::invalid_argument);
  try {
    DeploymentConfig::parse("pool nodes=64\nnet poll\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("poll"), std::string::npos);
  }
}

TEST(ConfigTest, RejectsUnknownDirective) {
  EXPECT_THROW(DeploymentConfig::parse("bogus x"), std::invalid_argument);
}

TEST(ConfigTest, RejectsActorWithoutType) {
  EXPECT_THROW(DeploymentConfig::parse("actor a enclave=e"),
               std::invalid_argument);
}

TEST(ConfigTest, RejectsWorkerWithoutActors) {
  EXPECT_THROW(DeploymentConfig::parse("worker w cpus=0"),
               std::invalid_argument);
}

TEST(ConfigTest, RejectsBadInteger) {
  EXPECT_THROW(DeploymentConfig::parse("pool nodes=abc"),
               std::invalid_argument);
}

TEST(ConfigTest, ErrorMessagesCarryLineNumbers) {
  try {
    DeploymentConfig::parse("enclave e\nbogus x\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigTest, BuildRuntimeEndToEnd) {
  sgxsim::ScopedCostModel scoped;
  sgxsim::cost_model().ecall_cycles = 100;
  sgxsim::cost_model().ocall_cycles = 100;

  ActorRegistry registry;
  PingActor* ping_ptr = nullptr;
  registry.register_type("ping", [&](const std::string& name) {
    auto actor = std::make_unique<PingActor>(name, 20);
    ping_ptr = actor.get();
    return actor;
  });
  registry.register_type("pong", [](const std::string& name) {
    return std::make_unique<PongActor>(name);
  });

  auto config = DeploymentConfig::parse(R"(
enclave e1
enclave e2
actor ping type=ping enclave=e1
actor pong type=pong enclave=e2
worker w1 cpus=0 actors=ping
worker w2 cpus=1 actors=pong
)");
  auto rt = build_runtime(config, registry);
  rt->start();
  EXPECT_TRUE(eventually([&] { return ping_ptr->received() >= 20; }));
  rt->stop();
}

TEST(ConfigTest, BuildRuntimeUnknownTypeThrows) {
  ActorRegistry registry;
  auto config = DeploymentConfig::parse("actor a type=ghost\nworker w actors=a\n");
  EXPECT_THROW(build_runtime(config, registry), std::invalid_argument);
}

}  // namespace
}  // namespace ea::core
