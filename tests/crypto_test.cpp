#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/deterministic.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

// --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) ------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = util::random_printable(1, 1000);
  for (std::size_t split = 0; split <= msg.size(); split += 97) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split=" << split;
  }
}

// --- HMAC-SHA-256 (RFC 4231) ------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = hmac_sha256(key, util::to_bytes("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = hmac_sha256(util::to_bytes("Jefe"),
                         util::to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = hmac_sha256(key, data);
  EXPECT_EQ(to_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  auto mac = hmac_sha256(
      key, util::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF (RFC 5869) ----------------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, 0x0b);
  Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsTooLong) {
  Bytes ikm(22, 0x0b);
  Sha256Digest prk = hkdf_extract({}, ikm);
  EXPECT_THROW(hkdf_expand(prk, {}, 256 * 32), std::invalid_argument);
}

// --- ChaCha20 (RFC 8439 §2.4.2) ----------------------------------------------

TEST(ChaCha20, Rfc8439KeystreamVector) {
  ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  ChaChaNonce nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes data = util::to_bytes(plaintext);
  chacha20_xor(key, 1, nonce, data);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(data.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, XorIsInvolution) {
  ChaChaKey key{};
  key[0] = 7;
  ChaChaNonce nonce{};
  Bytes data = util::to_bytes(util::random_printable(3, 1000));
  Bytes orig = data;
  chacha20_xor(key, 5, nonce, data);
  EXPECT_NE(data, orig);
  chacha20_xor(key, 5, nonce, data);
  EXPECT_EQ(data, orig);
}

// --- Poly1305 (RFC 8439 §2.5.2) ------------------------------------------------

TEST(Poly1305, Rfc8439Vector) {
  PolyKey key;
  Bytes key_bytes = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  auto tag = poly1305(key, util::to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  PolyKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  Bytes msg = util::to_bytes(util::random_printable(9, 517));
  auto expected = poly1305(key, msg);
  for (std::size_t split : {0u, 1u, 15u, 16u, 17u, 100u, 517u}) {
    Poly1305 mac(key);
    mac.update(std::span<const std::uint8_t>(msg.data(), split));
    mac.update(std::span<const std::uint8_t>(msg.data() + split,
                                             msg.size() - split));
    EXPECT_EQ(mac.finish(), expected) << "split=" << split;
  }
}

// --- AEAD (RFC 8439 §2.8.2) -----------------------------------------------------

TEST(Aead, Rfc8439Vector) {
  AeadKey key;
  Bytes key_bytes = from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  AeadNonce nonce = {0x07, 0x00, 0x00, 0x00, 0x40, 0x41,
                     0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes sealed = aead_encrypt(key, nonce, aad, util::to_bytes(plaintext));
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(sealed.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(
                sealed.data() + plaintext.size(), kAeadTagSize)),
            "1ae10b594f09e26a7e902ecbd0600691");
  auto opened = aead_decrypt(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(util::to_string(*opened), plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  AeadKey key{};
  key[0] = 1;
  AeadNonce nonce{};
  Bytes sealed = aead_encrypt(key, nonce, {}, util::to_bytes("secret"));
  sealed[2] ^= 0x40;
  EXPECT_FALSE(aead_decrypt(key, nonce, {}, sealed).has_value());
}

TEST(Aead, TamperedAadRejected) {
  AeadKey key{};
  AeadNonce nonce{};
  Bytes aad = util::to_bytes("context");
  Bytes sealed = aead_encrypt(key, nonce, aad, util::to_bytes("secret"));
  Bytes bad_aad = util::to_bytes("Context");
  EXPECT_FALSE(aead_decrypt(key, nonce, bad_aad, sealed).has_value());
  EXPECT_TRUE(aead_decrypt(key, nonce, aad, sealed).has_value());
}

TEST(Aead, WrongKeyRejected) {
  AeadKey key{};
  AeadKey other{};
  other[31] = 9;
  AeadNonce nonce{};
  Bytes sealed = aead_encrypt(key, nonce, {}, util::to_bytes("secret"));
  EXPECT_FALSE(aead_decrypt(other, nonce, {}, sealed).has_value());
}

TEST(Aead, FramedRoundTrip) {
  AeadKey key{};
  key[5] = 0x7a;
  Bytes aad = util::to_bytes("dir0");
  Bytes msg = util::to_bytes("payload data");
  Bytes framed = seal_with_counter(key, 1234, aad, msg);
  EXPECT_EQ(framed.size(), msg.size() + kAeadOverhead);
  auto opened = open_framed(key, aad, framed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(Aead, FramedCountersProduceDistinctCiphertexts) {
  AeadKey key{};
  Bytes msg = util::to_bytes("same message");
  Bytes a = seal_with_counter(key, 1, {}, msg);
  Bytes b = seal_with_counter(key, 2, {}, msg);
  EXPECT_NE(a, b);
}

TEST(Aead, FramedTooShortRejected) {
  AeadKey key{};
  Bytes garbage(kAeadOverhead - 1, 0);
  EXPECT_FALSE(open_framed(key, {}, garbage).has_value());
}

class AeadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadSizes, RoundTripAllSizes) {
  AeadKey key{};
  key[0] = 0x42;
  Bytes msg = util::to_bytes(util::random_printable(GetParam(), GetParam()));
  Bytes framed = seal_with_counter(key, GetParam(), {}, msg);
  auto opened = open_framed(key, {}, framed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 255,
                                           1024, 65536));

// --- Deterministic (SIV) ---------------------------------------------------------

TEST(Deterministic, SameInputSameOutput) {
  Bytes master(32, 0x11);
  DetKey key = derive_det_key(master);
  Bytes a = det_encrypt(key, util::to_bytes("alice"));
  Bytes b = det_encrypt(key, util::to_bytes("alice"));
  Bytes c = det_encrypt(key, util::to_bytes("alicf"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Deterministic, RoundTrip) {
  Bytes master(32, 0x22);
  DetKey key = derive_det_key(master);
  Bytes sealed = det_encrypt(key, util::to_bytes("key-material"));
  auto opened = det_decrypt(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(util::to_string(*opened), "key-material");
}

TEST(Deterministic, TamperRejected) {
  Bytes master(32, 0x33);
  DetKey key = derive_det_key(master);
  Bytes sealed = det_encrypt(key, util::to_bytes("key-material"));
  sealed.back() ^= 1;
  EXPECT_FALSE(det_decrypt(key, sealed).has_value());
}

TEST(Deterministic, WrongKeyRejected) {
  Bytes master_a(32, 0x44);
  Bytes master_b(32, 0x45);
  Bytes sealed = det_encrypt(derive_det_key(master_a), util::to_bytes("x"));
  EXPECT_FALSE(det_decrypt(derive_det_key(master_b), sealed).has_value());
}

// --- RNG ---------------------------------------------------------------------------

TEST(Rng, FastRngDeterministicPerSeed) {
  FastRng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  FastRng a2(123), c2(124);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, NextBelowBounds) {
  FastRng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, FillCoversBuffer) {
  FastRng rng(9);
  Bytes buf(100, 0);
  rng.fill(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 50);  // overwhelmingly likely
}

TEST(Rng, SecureRandomDistinctDraws) {
  Bytes a(32, 0), b(32, 0);
  secure_random(a);
  secure_random(b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ea::crypto

// --- X25519 (RFC 7748) -----------------------------------------------------------

namespace ea::crypto {
namespace {

X25519Key key_from_hex(const char* hex) {
  util::Bytes b = util::from_hex(hex);
  X25519Key k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

TEST(X25519, Rfc7748Vector1) {
  auto scalar = key_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(util::to_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  auto scalar = key_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(util::to_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748AliceBobSharedSecret) {
  auto alice_priv = key_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto bob_priv = key_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  auto alice_pub = x25519_base(alice_priv);
  auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(util::to_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(util::to_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  auto k1 = x25519(alice_priv, bob_pub);
  auto k2 = x25519(bob_priv, alice_pub);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(util::to_hex(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, KeygenProducesWorkingPairs) {
  for (int i = 0; i < 5; ++i) {
    X25519Key a = x25519_keygen();
    X25519Key b = x25519_keygen();
    EXPECT_NE(a, b);
    EXPECT_EQ(x25519(a, x25519_base(b)), x25519(b, x25519_base(a)));
  }
}

}  // namespace
}  // namespace ea::crypto
