// Unit tests for the failpoint subsystem itself (util/failpoint.hpp).
// Compiled only in EA_FAILPOINTS builds; ctest label: fault.
#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    fp::reset_counters();
  }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(FailpointTest, OffByDefaultButCounted) {
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.default"));
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.default"));
  EXPECT_EQ(fp::evals("t.default"), 2u);
  EXPECT_EQ(fp::hits("t.default"), 0u);
}

TEST_F(FailpointTest, ReturnFiresEveryTimeWithValue) {
  ASSERT_TRUE(fp::set("t.ret", "return(-42)"));
  long v = 0;
  EXPECT_TRUE(EA_FAIL_VALUE("t.ret", v));
  EXPECT_EQ(v, -42);
  v = 0;
  EXPECT_TRUE(EA_FAIL_VALUE("t.ret", v));
  EXPECT_EQ(v, -42);
  EXPECT_EQ(fp::hits("t.ret"), 2u);
}

TEST_F(FailpointTest, ValueUntouchedWhenNotFiring) {
  long v = 77;
  EXPECT_FALSE(EA_FAIL_VALUE("t.untouched", v));
  EXPECT_EQ(v, 77);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(fp::set("t.once", "once(7)"));
  long v = 0;
  EXPECT_TRUE(EA_FAIL_VALUE("t.once", v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.once"));
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.once"));
  EXPECT_EQ(fp::hits("t.once"), 1u);
}

TEST_F(FailpointTest, PercentZeroNeverAndHundredAlways) {
  ASSERT_TRUE(fp::set("t.never", "0%return"));
  ASSERT_TRUE(fp::set("t.always", "100%return"));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(EA_FAIL_TRIGGERED("t.never"));
    EXPECT_TRUE(EA_FAIL_TRIGGERED("t.always"));
  }
}

TEST_F(FailpointTest, PercentFiresApproximatelyProportionally) {
  ASSERT_TRUE(fp::set("t.half", "50%return"));
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (EA_FAIL_TRIGGERED("t.half")) ++fired;
  }
  // Deterministic internal stream; bounds are loose on purpose.
  EXPECT_GT(fired, 300);
  EXPECT_LT(fired, 700);
}

TEST_F(FailpointTest, BarePercentMeansReturn) {
  ASSERT_TRUE(fp::set("t.bare", "100%"));
  EXPECT_TRUE(EA_FAIL_TRIGGERED("t.bare"));
}

TEST_F(FailpointTest, ClearAndClearAll) {
  ASSERT_TRUE(fp::set("t.c1", "return"));
  ASSERT_TRUE(fp::set("t.c2", "return"));
  fp::clear("t.c1");
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.c1"));
  EXPECT_TRUE(EA_FAIL_TRIGGERED("t.c2"));
  fp::clear_all();
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.c2"));
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(fp::set("t.off", "return"));
  ASSERT_TRUE(fp::set("t.off", "off"));
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.off"));
}

TEST_F(FailpointTest, ParseErrorsRejectedAndSiteUnchanged) {
  ASSERT_TRUE(fp::set("t.parse", "return(5)"));
  EXPECT_FALSE(fp::set("t.parse", "frobnicate"));
  EXPECT_FALSE(fp::set("t.parse", ""));
  EXPECT_FALSE(fp::set("t.parse", "return(x)"));
  EXPECT_FALSE(fp::set("t.parse", "return(5"));
  EXPECT_FALSE(fp::set("t.parse", "150%return"));
  EXPECT_FALSE(fp::set("t.parse", "abort(0)"));
  long v = 0;
  EXPECT_TRUE(EA_FAIL_VALUE("t.parse", v));
  EXPECT_EQ(v, 5);
}

TEST_F(FailpointTest, AbortAtKthEvaluation) {
  EXPECT_EXIT(
      {
        fp::set("t.abort", "abort(3)");
        for (int i = 0; i < 10; ++i) {
          EA_FAIL_POINT("t.abort");
          // The first two evaluations must survive; print progress so the
          // death-test can also assert *when* the abort happened.
          std::fprintf(stderr, "survived %d\n", i + 1);
        }
      },
      ::testing::KilledBySignal(SIGABRT), "survived 2");
}

TEST_F(FailpointTest, EnvLoading) {
  ASSERT_EQ(::setenv("EA_FAILPOINTS", "t.env=return(9);t.env2=once", 1), 0);
  EXPECT_EQ(fp::load_env(), 2);
  ::unsetenv("EA_FAILPOINTS");
  long v = 0;
  EXPECT_TRUE(EA_FAIL_VALUE("t.env", v));
  EXPECT_EQ(v, 9);
  EXPECT_TRUE(EA_FAIL_TRIGGERED("t.env2"));
  EXPECT_FALSE(EA_FAIL_TRIGGERED("t.env2"));
}

TEST_F(FailpointTest, SitesListsRegisteredNames) {
  EA_FAIL_POINT("t.listed.a");
  ASSERT_TRUE(fp::set("t.listed.b", "return"));
  auto names = fp::sites();
  int found = 0;
  for (const auto& n : names) {
    if (n == "t.listed.a" || n == "t.listed.b") ++found;
  }
  EXPECT_EQ(found, 2);
}

TEST_F(FailpointTest, ReportRoundTrip) {
  ASSERT_TRUE(fp::set("t.rep", "return"));
  EA_FAIL_POINT("t.rep");
  EA_FAIL_POINT("t.rep");
  std::string path =
      "/tmp/ea_failpoint_report_" + std::to_string(::getpid()) + ".txt";
  ASSERT_TRUE(fp::write_report(path.c_str()));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  bool found = false;
  char name[128];
  unsigned long long ev = 0, hit = 0;
  while (std::fscanf(f, "%127s %llu %llu", name, &ev, &hit) == 3) {
    if (std::string(name) == "t.rep") {
      found = true;
      EXPECT_EQ(ev, 2u);
      EXPECT_EQ(hit, 2u);
    }
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, ResetCountersZeroes) {
  EA_FAIL_POINT("t.reset");
  ASSERT_GE(fp::evals("t.reset"), 1u);
  fp::reset_counters();
  EXPECT_EQ(fp::evals("t.reset"), 0u);
}

}  // namespace
