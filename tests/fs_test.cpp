#include <gtest/gtest.h>

#include <cerrno>
#include <unistd.h>

#include "concurrent/arena.hpp"
#include "concurrent/pool.hpp"
#include "fs/file_actor.hpp"
#include "util/bytes.hpp"

namespace ea::fs {
namespace {

class FileActorTest : public ::testing::Test {
 protected:
  FileActorTest() : arena_(64, 2048), actor_("file") {
    pool_.adopt(arena_);
    path_ = "/tmp/ea_fs_test_" + std::to_string(::getpid()) + ".dat";
    ::unlink(path_.c_str());
  }
  ~FileActorTest() override { ::unlink(path_.c_str()); }

  // Sends one request and drives the actor until the reply arrives.
  concurrent::NodeLease round_trip(const FileRequest& request,
                                   std::span<const std::uint8_t> payload = {}) {
    concurrent::Node* node = pool_.get();
    EXPECT_TRUE(fill_file_request(*node, request, payload));
    actor_.requests().push(node);
    for (int i = 0; i < 100 && reply_.empty(); ++i) actor_.body();
    return concurrent::NodeLease(reply_.pop());
  }

  FileRequest make_request(FileRequest::Op op) {
    FileRequest request;
    request.op = op;
    std::snprintf(request.path, sizeof(request.path), "%s", path_.c_str());
    request.reply = &reply_;
    request.pool = &pool_;
    request.cookie = 77;
    return request;
  }

  concurrent::NodeArena arena_;
  concurrent::Pool pool_;
  concurrent::Mbox reply_;
  FileActor actor_;
  std::string path_;
};

TEST_F(FileActorTest, WriteThenRead) {
  util::Bytes data = util::to_bytes("persistent payload");
  auto wrote = round_trip(make_request(FileRequest::kWrite), data);
  ASSERT_TRUE(wrote);
  FileReplyHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(parse_file_reply(*wrote.get(), header, body));
  EXPECT_EQ(header.cookie, 77u);
  EXPECT_EQ(header.status, static_cast<std::int64_t>(data.size()));

  FileRequest read = make_request(FileRequest::kRead);
  read.length = 1024;
  auto got = round_trip(read);
  ASSERT_TRUE(got);
  ASSERT_TRUE(parse_file_reply(*got.get(), header, body));
  EXPECT_EQ(header.status, static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(util::to_string(body), "persistent payload");
}

TEST_F(FileActorTest, AppendAccumulates) {
  round_trip(make_request(FileRequest::kWrite), util::to_bytes("abc"));
  round_trip(make_request(FileRequest::kAppend), util::to_bytes("def"));

  FileRequest size_req = make_request(FileRequest::kSize);
  auto size_reply = round_trip(size_req);
  FileReplyHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(parse_file_reply(*size_reply.get(), header, body));
  EXPECT_EQ(header.status, 6);
}

TEST_F(FileActorTest, ReadAtOffset) {
  round_trip(make_request(FileRequest::kWrite), util::to_bytes("0123456789"));
  FileRequest read = make_request(FileRequest::kRead);
  read.offset = 4;
  read.length = 3;
  auto reply = round_trip(read);
  FileReplyHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(parse_file_reply(*reply.get(), header, body));
  EXPECT_EQ(util::to_string(body), "456");
}

TEST_F(FileActorTest, MissingFileReportsErrno) {
  FileRequest read = make_request(FileRequest::kRead);
  read.length = 10;
  auto reply = round_trip(read);
  FileReplyHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(parse_file_reply(*reply.get(), header, body));
  EXPECT_EQ(header.status, -ENOENT);
}

TEST_F(FileActorTest, DeleteRemovesFile) {
  round_trip(make_request(FileRequest::kWrite), util::to_bytes("temp"));
  auto del = round_trip(make_request(FileRequest::kDelete));
  FileReplyHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(parse_file_reply(*del.get(), header, body));
  EXPECT_EQ(header.status, 0);

  auto size_reply = round_trip(make_request(FileRequest::kSize));
  ASSERT_TRUE(parse_file_reply(*size_reply.get(), header, body));
  EXPECT_EQ(header.status, -ENOENT);
}

TEST_F(FileActorTest, NodesAreConserved) {
  for (int i = 0; i < 20; ++i) {
    auto reply = round_trip(make_request(FileRequest::kSize));
  }
  // Every request and reply node returned to the pool.
  EXPECT_EQ(pool_.size(), arena_.count());
}

}  // namespace
}  // namespace ea::fs
