// Cross-module integration tests: full deployments exercising runtime,
// sgxsim, channels, networking and application logic together.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/config.hpp"
#include "core/runtime.hpp"
#include "pos/cleaner_actor.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"
#include "smc/party_actor.hpp"
#include "smc/sdk_ring.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

namespace ea {
namespace {

using namespace std::chrono_literals;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// An actor that stores every received message into the POS and echoes the
// stored value back — exercising channel + POS + cleaner together.
class StoreActor : public core::Actor {
 public:
  StoreActor(std::string name, pos::Pos& store)
      : core::Actor(std::move(name)), store_(store) {}

  void construct(core::Runtime&) override { in_ = connect("to-store"); }

  bool body() override {
    // One epoch section per activation: the drain loop's store operations
    // share a single announcement instead of entering one each.
    pos::Pos::Section section(store_);
    bool progress = false;
    while (auto msg = in_->recv()) {
      std::string text(msg->view());
      auto sep = text.find('=');
      if (sep != std::string::npos) {
        store_.set(util::to_bytes(text.substr(0, sep)),
                   util::to_bytes(text.substr(sep + 1)));
        ++stored_;
      }
      progress = true;
    }
    return progress;
  }

  int stored() const noexcept { return stored_; }

 private:
  pos::Pos& store_;
  core::ChannelEnd* in_ = nullptr;
  std::atomic<int> stored_{0};
};

class FeedActor : public core::Actor {
 public:
  FeedActor(std::string name, int count)
      : core::Actor(std::move(name)), count_(count) {}

  void construct(core::Runtime&) override { out_ = connect("to-store"); }

  bool body() override {
    if (sent_ >= count_) return false;
    std::string msg =
        "key" + std::to_string(sent_ % 5) + "=value" + std::to_string(sent_);
    if (out_->send(msg)) ++sent_;
    return true;
  }

 private:
  core::ChannelEnd* out_ = nullptr;
  int count_;
  int sent_ = 0;
};

TEST_F(IntegrationTest, EnclavedStoreActorWithCleaner) {
  pos::PosOptions pos_options;
  pos_options.entry_count = 256;
  pos_options.entry_payload = 64;
  pos::Pos store(pos_options);

  core::Runtime rt;
  auto store_actor = std::make_unique<StoreActor>("store", store);
  StoreActor* store_ptr = store_actor.get();
  rt.add_actor(std::move(store_actor), "store-enclave");
  rt.add_actor(std::make_unique<FeedActor>("feed", 100));
  rt.add_actor(std::make_unique<pos::CleanerActor>("cleaner", store));
  rt.add_worker("w1", {0}, {"feed"});
  rt.add_worker("w2", {0}, {"store", "cleaner"});

  // Mixed worker (enclaved store + untrusted cleaner) exercises migration.
  rt.start();
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (store_ptr->stored() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  rt.stop();
  ASSERT_EQ(store_ptr->stored(), 100);

  // Latest version per key is visible.
  for (int k = 0; k < 5; ++k) {
    auto value = store.get(util::to_bytes("key" + std::to_string(k)));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(util::to_string(*value), "value" + std::to_string(95 + k));
  }
  // The cleaner reclaimed superseded versions (100 sets across 5 keys
  // cannot all remain live); drive remaining steps to quiesce.
  store.clean_step();
  store.clean_step();
  EXPECT_LE(store.stats().outdated, 5u);
}

TEST_F(IntegrationTest, XmppAndSmcCoexistInOneRuntime) {
  // One runtime hosting both use cases — the configurability claim.
  core::RuntimeOptions options;
  options.pool_nodes = 2048;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);

  xmpp::XmppServiceConfig xmpp_config;
  xmpp_config.instances = 1;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, xmpp_config);

  smc::SmcConfig smc_config;
  smc_config.parties = 3;
  smc_config.dim = 4;
  smc::SmcDeployment smc_dep = smc::install_secure_sum(rt, smc_config);

  rt.start();

  // XMPP path works.
  xmpp::Client alice, bob;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  ASSERT_TRUE(alice.send_chat("bob", "hi"));
  auto msg = bob.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "hi");

  // SMC path works concurrently.
  smc::SdkSecureSum reference(smc_config);
  smc::Vec expected = reference.expected_sum();
  smc_dep.requests->push(rt.public_pool().get());
  auto deadline = std::chrono::steady_clock::now() + 10s;
  concurrent::Node* result = nullptr;
  while (result == nullptr && std::chrono::steady_clock::now() < deadline) {
    result = smc_dep.results->pop();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_NE(result, nullptr);
  concurrent::NodeLease lease(result);
  EXPECT_EQ(smc::deserialize(result->data()), expected);
  rt.stop();
}

TEST_F(IntegrationTest, Figure16StyleEnclavePacking) {
  // 4 instances packed into 1, 2 and 4 enclaves must all be functional.
  for (int enclaves : {1, 2, 4}) {
    core::RuntimeOptions options;
    options.pool_nodes = 2048;
    core::Runtime rt(options);
    xmpp::XmppServiceConfig config;
    config.instances = 4;
    config.enclaves = enclaves;
    xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
    rt.start();

    xmpp::Client a, b;
    ASSERT_TRUE(a.connect(service.port, "a")) << enclaves;
    ASSERT_TRUE(b.connect(service.port, "b")) << enclaves;
    ASSERT_TRUE(a.send_chat("b", "packed"));
    auto msg = b.recv(5000);
    ASSERT_TRUE(msg.has_value()) << enclaves;
    EXPECT_EQ(msg->body, "packed");
    rt.stop();
  }
}

TEST_F(IntegrationTest, TransitionAccountingAcrossDeployments) {
  // EActors property: co-located actors => constant transitions; the
  // SDK-style ring => transitions per invocation. Verify the *relative*
  // claim the whole paper rests on.
  smc::SmcConfig config;
  config.parties = 4;
  config.dim = 1;

  smc::SdkSecureSum sdk(config);
  sgxsim::reset_transition_stats();
  for (int i = 0; i < 10; ++i) sdk.run_once();
  std::uint64_t sdk_ecalls = sgxsim::transition_stats().ecalls;
  EXPECT_EQ(sdk_ecalls, 10u * 5u);  // (K+1) per invocation

  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 1024;
  core::Runtime rt(options);
  smc::SmcDeployment dep = smc::install_secure_sum(rt, config);
  rt.start();
  // Warm-up.
  dep.requests->push(rt.public_pool().get());
  auto deadline = std::chrono::steady_clock::now() + 10s;
  concurrent::Node* warm = nullptr;
  while (warm == nullptr && std::chrono::steady_clock::now() < deadline) {
    warm = dep.results->pop();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_NE(warm, nullptr);
  concurrent::NodeLease(warm).reset();

  sgxsim::reset_transition_stats();
  for (int i = 0; i < 10; ++i) dep.requests->push(rt.public_pool().get());
  int received = 0;
  deadline = std::chrono::steady_clock::now() + 10s;
  while (received < 10 && std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* node = dep.results->pop()) {
      concurrent::NodeLease lease(node);
      ++received;
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  ASSERT_EQ(received, 10);
  EXPECT_EQ(sgxsim::transition_stats().ecalls, 0u);
  rt.stop();
}

}  // namespace
}  // namespace ea
