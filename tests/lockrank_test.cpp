// Lock-rank runtime checker tests (ctest label: lockrank).
//
// The deadlock regression at the heart of the suite: two threads acquiring
// two locks in opposite orders. Without the checker that schedule deadlocks
// only when the interleaving is unlucky; with EA_LOCK_RANK=ON the inverted
// acquisition is caught DETERMINISTICALLY — note_acquire() compares ranks
// before the lock ever spins, so the violation fires on every run of every
// schedule, not just the ones that interleave badly.
//
// In tier-1 builds (EA_LOCK_RANK off) the checker compiles away; the suite
// then only asserts the no-op stubs and skips the rest.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "concurrent/hle_lock.hpp"
#include "concurrent/lock_rank.hpp"
#include "core/actor.hpp"
#include "core/runtime.hpp"
#include "core/supervisor.hpp"

namespace ea {
namespace {

using concurrent::HleGuard;
using concurrent::HleSpinLock;
using concurrent::LockRank;
using concurrent::LockRankError;

#if !defined(EA_LOCK_RANK)

TEST(LockRank, CheckerCompiledOut) {
  // Release builds: the stubs must exist, do nothing, and cost nothing to
  // call — lock() keeps its noexcept in this configuration.
  concurrent::lock_rank::note_acquire(LockRank::kMbox);
  EXPECT_EQ(concurrent::lock_rank::violations(), 0u);
  EXPECT_EQ(concurrent::lock_rank::held_count(), 0);
  HleSpinLock lock(LockRank::kMbox);
  static_assert(noexcept(lock.lock()));
  GTEST_SKIP() << "EA_LOCK_RANK is off; checker behaviour not testable";
}

#else  // EA_LOCK_RANK

// Counts violations instead of throwing, so a test can let the acquisition
// proceed and inspect what was reported.
std::atomic<int> g_counted{0};
concurrent::LockRankViolation g_last{LockRank::kUnranked, LockRank::kUnranked};

void counting_handler(const concurrent::LockRankViolation& v) {
  g_last = v;
  g_counted.fetch_add(1, std::memory_order_relaxed);
}

class ScopedHandler {
 public:
  explicit ScopedHandler(concurrent::lock_rank::Handler h)
      : prev_(concurrent::lock_rank::set_violation_handler(h)) {}
  ~ScopedHandler() { concurrent::lock_rank::set_violation_handler(prev_); }

 private:
  concurrent::lock_rank::Handler prev_;
};

TEST(LockRank, AscendingOrderIsClean) {
  const auto before = concurrent::lock_rank::violations();
  HleSpinLock low(LockRank::kMbox);
  HleSpinLock high(LockRank::kPosFree);
  {
    HleGuard a(low);
    HleGuard b(high);
    EXPECT_EQ(concurrent::lock_rank::held_count(), 2);
  }
  EXPECT_EQ(concurrent::lock_rank::held_count(), 0);
  EXPECT_EQ(concurrent::lock_rank::violations(), before);
}

TEST(LockRank, InvertedOrderThrowsDeterministically) {
  HleSpinLock low(LockRank::kMbox);
  HleSpinLock high(LockRank::kPosFree);
  const auto before = concurrent::lock_rank::violations();
  high.lock();
  EXPECT_THROW({ HleGuard inner(low); }, LockRankError);
  // The throw happened before the inner lock was touched: the outer lock is
  // still held (and tracked), the inner one is free.
  EXPECT_EQ(concurrent::lock_rank::held_count(), 1);
  high.unlock();
  EXPECT_EQ(concurrent::lock_rank::held_count(), 0);
  EXPECT_EQ(concurrent::lock_rank::violations(), before + 1);
  // The inner lock was left untouched by the contained violation.
  { HleGuard reacquire(low); }
}

TEST(LockRank, SameRankNestingIsForbidden) {
  // Two POS bucket locks: the runtime locks one bucket at a time, so
  // holding two is a protocol break even though no rank descends.
  HleSpinLock a(LockRank::kPosBucket);
  HleSpinLock b(LockRank::kPosBucket);
  HleGuard outer(a);
  EXPECT_THROW({ HleGuard inner(b); }, LockRankError);
}

TEST(LockRank, UnrankedLocksAreExemptAndUntracked) {
  HleSpinLock ranked(LockRank::kPosFree);
  HleSpinLock unranked;  // kUnranked by default
  HleGuard outer(ranked);
  // Acquiring an unranked lock under a high rank is permitted (opt-out),
  // and it never enters the held stack.
  HleGuard inner(unranked);
  EXPECT_EQ(concurrent::lock_rank::held_count(), 1);
}

TEST(LockRank, ReleaseRestoresHeadroom) {
  HleSpinLock low(LockRank::kMbox);
  HleSpinLock high(LockRank::kPosFree);
  {
    HleGuard a(low);
    { HleGuard b(high); }
    // high released: its rank must be popped, so re-acquiring it (or any
    // rank above kMbox) is legal again.
    HleGuard b2(high);
    EXPECT_EQ(concurrent::lock_rank::held_count(), 2);
  }
}

// The two-thread deadlock regression. Thread A takes low→high (legal),
// thread B takes high→low (the inversion that could deadlock against A).
// B's violation fires on its first inverted acquisition in EVERY
// interleaving: detection needs no unlucky schedule, because the check is
// against B's own held stack, not against what A happens to hold.
TEST(LockRank, TwoThreadInversionCaughtInEveryInterleaving) {
  HleSpinLock low(LockRank::kMbox);
  HleSpinLock high(LockRank::kPosFree);
  std::atomic<int> caught{0};
  std::atomic<int> clean_passes{0};

  std::thread legal([&] {
    for (int i = 0; i < 1000; ++i) {
      HleGuard a(low);
      HleGuard b(high);
      clean_passes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread inverted([&] {
    for (int i = 0; i < 1000; ++i) {
      high.lock();
      try {
        HleGuard inner(low);  // would deadlock against `legal` eventually
      } catch (const LockRankError&) {
        caught.fetch_add(1, std::memory_order_relaxed);
      }
      high.unlock();
    }
  });
  legal.join();
  inverted.join();

  // Deterministic: every single inverted attempt was caught, and the legal
  // thread was never flagged.
  EXPECT_EQ(caught.load(), 1000);
  EXPECT_EQ(clean_passes.load(), 1000);
}

TEST(LockRank, CountingHandlerObservesRanks) {
  ScopedHandler guard(&counting_handler);
  g_counted.store(0);
  HleSpinLock low(LockRank::kMbox);
  HleSpinLock high(LockRank::kPosFree);
  {
    HleGuard outer(high);
    // With a returning handler the acquisition proceeds (and is tracked),
    // letting tests observe the reported pair.
    HleGuard inner(low);
    EXPECT_EQ(concurrent::lock_rank::held_count(), 2);
  }
  EXPECT_EQ(g_counted.load(), 1);
  EXPECT_EQ(g_last.held, LockRank::kPosFree);
  EXPECT_EQ(g_last.acquiring, LockRank::kMbox);
  EXPECT_EQ(concurrent::lock_rank::held_count(), 0);
}

TEST(LockRank, RankNamesCoverTable) {
  EXPECT_STREQ(lock_rank_name(LockRank::kPosBucket), "kPosBucket");
  EXPECT_STREQ(lock_rank_name(LockRank::kMagazineRegistry),
               "kMagazineRegistry");
  EXPECT_STREQ(lock_rank_name(LockRank::kRunQueue), "kRunQueue");
  EXPECT_STREQ(lock_rank_name(static_cast<LockRank>(255)), "kUnknown");
}

// Scheduler ordering regression: the run-queue lock ranks BELOW the mbox
// rank — a worker may probe lock-free mbox counters (and in steal mode,
// push to a queue) while threading scheduler state, but dispatch code must
// never acquire a run-queue lock while holding an mbox lock (the reverse
// could deadlock a steal against a concurrent mailbox push). The checker
// turns that schedule-dependent deadlock into a deterministic throw.
TEST(LockRank, RunQueueUnderMboxIsInverted) {
  HleSpinLock queue_lock(LockRank::kRunQueue);
  HleSpinLock mbox_lock(LockRank::kMbox);
  {
    // Legal direction: queue lock first, mbox later.
    HleGuard a(queue_lock);
    HleGuard b(mbox_lock);
    EXPECT_EQ(concurrent::lock_rank::held_count(), 2);
  }
  const auto before = concurrent::lock_rank::violations();
  mbox_lock.lock();
  EXPECT_THROW({ HleGuard inner(queue_lock); }, LockRankError);
  mbox_lock.unlock();
  EXPECT_EQ(concurrent::lock_rank::violations(), before + 1);
}

// The violation "aborts via supervisor": an actor whose body performs an
// inverted acquisition fails like any other throwing body — the worker
// contains LockRankError, the supervisor restarts the actor, the process
// never dies. This is the contract that makes running the checker inside
// the full fault matrix safe.
struct InvertedLockActor : core::Actor {
  using core::Actor::Actor;
  std::atomic<bool> invert{false};
  HleSpinLock low{LockRank::kMbox};
  HleSpinLock high{LockRank::kPosFree};

  bool body() override {
    if (invert.load(std::memory_order_relaxed)) {
      invert.store(false, std::memory_order_relaxed);
      HleGuard outer(high);
      HleGuard inner(low);  // throws LockRankError
    }
    return true;
  }
};

TEST(LockRank, ViolationIsContainedAndActorRestarts) {
  core::Runtime rt;
  auto& actor = static_cast<InvertedLockActor&>(
      rt.add_actor(std::make_unique<InvertedLockActor>("inverter")));
  core::SupervisorActor::Options opts;
  opts.sweep_interval_us = 0;
  opts.default_policy.backoff = core::BackoffPolicy{0, 0, 2, 0};
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
  rt.start();

  actor.invert.store(true);
  EXPECT_FALSE(core::invoke_contained(actor));
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  // The guard unwound: no ranks stay held on this thread, and the failure
  // record names the rank pair.
  EXPECT_EQ(concurrent::lock_rank::held_count(), 0);
  EXPECT_NE(actor.last_failure().what.find("lock-rank violation"),
            std::string::npos);

  sup.body();  // schedules the restart (zero backoff)
  sup.body();  // performs it
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);
  EXPECT_TRUE(core::invoke_contained(actor));
  rt.stop();
}

#endif  // EA_LOCK_RANK

}  // namespace
}  // namespace ea
