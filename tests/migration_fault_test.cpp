// Migration fault-injection tests (ctest labels: fault, migrate;
// EA_FAILPOINTS builds only).
//
// The four shipped migration failpoints, each proving a DESIGN.md §17
// rollback property:
//
//   migrate.seal.fail     export/seal dies source-locally → the actor
//                         resumes in place, nothing leaves the enclave;
//   migrate.transfer.drop the bundle never reaches the target → the source
//                         copy is restored FROM THE SEALED BUNDLE and the
//                         (source, target) route — never the actor — is
//                         quarantined;
//   migrate.resume.dup    a duplicate resume of the same bundle → the
//                         monotonic-counter consume refuses it (the
//                         resume-twice fork is counted, not executed);
//   migrate.epc.probe     injected per-enclave committed bytes → the
//                         placement controller evicts without having to
//                         allocate real EPC-scale state.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/health.hpp"
#include "core/migration.hpp"
#include "core/runtime.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace ea::core {
namespace {

class MigrationFaultTest : public ::testing::Test {
 protected:
  MigrationFaultTest() {
    sgxsim::cost_model().ecall_cycles = 0;
    sgxsim::cost_model().ocall_cycles = 0;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
    fp::clear_all();
  }
  ~MigrationFaultTest() override { fp::clear_all(); }
  sgxsim::ScopedCostModel scoped_;
};

// Migratable actor with one-counter private state plus an optional POS
// partition, so rollback visibly restores BOTH.
class VictimActor : public Actor {
 public:
  explicit VictimActor(std::string name) : Actor(std::move(name)) {}

  bool body() override { return false; }
  bool migratable() const override { return true; }

  util::Bytes export_state() override {
    util::Bytes out(8);
    util::store_le64(out.data(), value_);
    return out;
  }
  bool import_state(std::span<const std::uint8_t> state) override {
    if (state.size() != 8) return false;
    value_ = util::load_le64(state.data());
    ++imports_;
    return import_ok_;
  }
  util::Bytes export_pos_partition() override {
    if (pos_ == nullptr) return {};
    util::Bytes blob = pos_->export_partition(prefix_);
    pos_->erase_partition(prefix_);  // resume-at-target is the only live copy
    return blob;
  }
  bool import_pos_partition(std::span<const std::uint8_t> blob) override {
    if (pos_ == nullptr) return blob.empty();
    return pos_->import_partition(blob);
  }

  std::uint64_t value_ = 7;
  int imports_ = 0;
  bool import_ok_ = true;
  pos::Pos* pos_ = nullptr;
  util::Bytes prefix_;
};

struct Deployment {
  Runtime rt;
  VictimActor* victim = nullptr;
  sgxsim::Enclave* src = nullptr;
  sgxsim::Enclave* dst = nullptr;
  std::uint64_t src_base = 0;
  std::uint64_t dst_base = 0;

  explicit Deployment(const std::string& tag) {
    src = &rt.enclave(tag + ".src");
    dst = &rt.enclave(tag + ".dst");
    src_base = src->committed_bytes();
    dst_base = dst->committed_bytes();
    auto owned = std::make_unique<VictimActor>(tag + ".victim");
    victim = owned.get();
    rt.add_actor(std::move(owned), tag + ".src");
  }
};

TEST_F(MigrationFaultTest, SealFailureResumesInPlace) {
  Deployment d("sealf");
  MigrationCoordinator coordinator(d.rt);
  ASSERT_TRUE(fp::set("migrate.seal.fail", "once"));

  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst), MigrateResult::kSealFailed);
  EXPECT_EQ(fp::hits("migrate.seal.fail"), 1u);
  EXPECT_EQ(d.victim->lifecycle(), ActorState::kRunnable);
  EXPECT_EQ(d.victim->placement(), d.src->id());
  EXPECT_EQ(d.victim->value_, 7u);
  EXPECT_EQ(d.src->committed_bytes(),
            d.src_base + d.victim->state_bytes());  // accounting untouched
  MigrationStats stats = coordinator.stats();
  EXPECT_EQ(stats.rolled_back, 1u);
  EXPECT_EQ(stats.completed, 0u);
  // A seal failure is source-local: the route keeps working.
  EXPECT_FALSE(coordinator.route_quarantined(d.src->id(), d.dst->id()));
  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst), MigrateResult::kOk);
}

TEST_F(MigrationFaultTest, TransferDropRestoresSourceAndQuarantinesRoute) {
  Deployment d("drop");
  // POS partition attached: the export erases it, so only a genuine
  // rollback restore can bring the keys back.
  pos::PosOptions popts;
  popts.bucket_count = 8;
  popts.entry_count = 128;
  popts.entry_payload = 128;
  pos::Pos store(popts);
  d.victim->pos_ = &store;
  d.victim->prefix_ = util::to_bytes("drop.victim/");
  ASSERT_TRUE(store.set(util::to_bytes("drop.victim/k"),
                        util::to_bytes("payload")));

  MigrationCoordinator coordinator(d.rt);
  ASSERT_TRUE(fp::set("migrate.transfer.drop", "once"));

  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst),
            MigrateResult::kTransferFailed);
  EXPECT_EQ(fp::hits("migrate.transfer.drop"), 1u);

  // The actor is restored at the source — Runnable, state and POS
  // partition intact — and ONLY the route is quarantined.
  EXPECT_EQ(d.victim->lifecycle(), ActorState::kRunnable);
  EXPECT_EQ(d.victim->placement(), d.src->id());
  EXPECT_EQ(d.victim->value_, 7u);
  EXPECT_EQ(d.victim->imports_, 1);  // restored via the sealed bundle
  auto restored = store.get(util::to_bytes("drop.victim/k"));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, util::to_bytes("payload"));
  EXPECT_EQ(d.src->committed_bytes(), d.src_base + d.victim->state_bytes());
  EXPECT_EQ(d.dst->committed_bytes(), d.dst_base);

  EXPECT_TRUE(coordinator.route_quarantined(d.src->id(), d.dst->id()));
  EXPECT_EQ(coordinator.stats().rolled_back, 1u);
  // The quarantined route refuses further attempts ...
  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst),
            MigrateResult::kRouteQuarantined);
  // ... but the ACTOR is not quarantined: a third enclave works first try.
  sgxsim::Enclave& alt = d.rt.enclave("drop.alt");
  EXPECT_EQ(coordinator.migrate(*d.victim, alt), MigrateResult::kOk);
  EXPECT_EQ(d.victim->placement(), alt.id());
  auto moved = store.get(util::to_bytes("drop.victim/k"));
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(*moved, util::to_bytes("payload"));
}

TEST_F(MigrationFaultTest, DuplicateResumeTripsTheCounterGuard) {
  Deployment d("dup");
  MigrationCoordinator coordinator(d.rt);
  ASSERT_TRUE(fp::set("migrate.resume.dup", "once"));

  // The migration itself succeeds; the injected SECOND consume of the same
  // ticket — the resume-twice fork — must be refused by the
  // compare-and-increment and counted as a prevented fork.
  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst), MigrateResult::kOk);
  EXPECT_EQ(fp::hits("migrate.resume.dup"), 1u);
  MigrationStats stats = coordinator.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.forks_prevented, 1u);
  EXPECT_EQ(d.victim->placement(), d.dst->id());
}

TEST_F(MigrationFaultTest, ImportFailureRollsBackPlacementAndAccounting) {
  Deployment d("impf");
  d.victim->import_ok_ = false;  // target-side import refuses
  MigrationCoordinator coordinator(d.rt);

  EXPECT_EQ(coordinator.migrate(*d.victim, *d.dst),
            MigrateResult::kImportFailed);
  EXPECT_EQ(d.victim->lifecycle(), ActorState::kRunnable);
  EXPECT_EQ(d.victim->placement(), d.src->id());
  EXPECT_EQ(d.src->committed_bytes(), d.src_base + d.victim->state_bytes());
  EXPECT_EQ(d.dst->committed_bytes(), d.dst_base);
  EXPECT_TRUE(coordinator.route_quarantined(d.src->id(), d.dst->id()));
  EXPECT_EQ(coordinator.stats().rolled_back, 1u);
}

TEST_F(MigrationFaultTest, EpcProbeFailpointDrivesTheController) {
  Runtime rt;
  // Map order decides probe order: "epcfp.a" is probed first, so the
  // injected value lands on it.
  sgxsim::Enclave& a = rt.enclave("epcfp.a");
  sgxsim::Enclave& b = rt.enclave("epcfp.b");
  auto owned = std::make_unique<VictimActor>("epcfp.victim");
  VictimActor* victim = owned.get();
  rt.add_actor(std::move(owned), "epcfp.a");

  MigrationCoordinator coordinator(rt);
  PlacementControllerOptions po;
  po.watermark = 0.80;
  po.epc_budget_bytes = 64 * 1024 * 1024;
  po.sweep_interval_us = 0;
  PlacementControllerActor controller(coordinator, po);

  // Without injection the enclave is far below the watermark: no eviction.
  EXPECT_FALSE(controller.body());
  EXPECT_EQ(victim->placement(), a.id());

  // Inject one probe reading of 60 MiB (>= 0.8 * 64 MiB): the controller
  // must evict the victim off epcfp.a without any real allocation.
  ASSERT_TRUE(fp::set("migrate.epc.probe", "once(62914560)"));
  EXPECT_TRUE(controller.body());
  EXPECT_EQ(fp::hits("migrate.epc.probe"), 1u);
  EXPECT_EQ(victim->placement(), b.id());
  EXPECT_EQ(controller.migrations_triggered(), 1u);
  EXPECT_EQ(coordinator.stats().completed, 1u);
}

}  // namespace
}  // namespace ea::core
