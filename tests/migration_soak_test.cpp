// Live XMPP migration soak (ctest labels: fault, migrate, supervise;
// EA_FAILPOINTS builds only).
//
// The ISSUE-10 demo, end to end: a single-instance XMPP echo service under
// the supervision fault storm has its protocol eactor live-migrated between
// enclaves mid-conversation. Acked-message accounting is the oracle — alice
// resends every chat until its echo returns, so a lost in-flight stanza
// would surface as a hung resend loop, never as silent loss.
//
//   * the clean run bounces the actor across enclaves while traffic flows
//     and loses no acknowledged message;
//   * the faulted run injects migrate.transfer.drop into the first attempt:
//     rollback restores the source copy from the sealed bundle, quarantines
//     only the (source, target) route, and the service keeps echoing — a
//     later migration over a clean route still succeeds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/health.hpp"
#include "core/migration.hpp"
#include "core/runtime.hpp"
#include "core/supervisor.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/failpoint.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

namespace fp = ea::util::failpoint;

namespace ea {
namespace {

using namespace std::chrono_literals;

core::SupervisorActor::Options storm_opts() {
  core::SupervisorActor::Options opts;
  opts.sweep_interval_us = 200;
  opts.default_policy.backoff = core::BackoffPolicy{100, 2000, 2, 20};
  opts.default_policy.max_restarts = 1'000'000;
  opts.default_policy.window_us = 10'000'000;
  return opts;
}

class MigrationSoakTest : public ::testing::Test {
 protected:
  MigrationSoakTest() {
    sgxsim::cost_model().ecall_cycles = 10;
    sgxsim::cost_model().ocall_cycles = 10;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
    fp::clear_all();
    fp::reset_counters();
  }
  ~MigrationSoakTest() override { fp::clear_all(); }
  sgxsim::ScopedCostModel scoped_;
};

// Single-instance trusted XMPP deployment under the stealing scheduler
// (live migration needs per-dispatch placement reads), with two spare
// enclaves created up front as migration targets.
struct SoakRig {
  core::Runtime rt;
  xmpp::XmppService service;
  core::SupervisorActor* sup = nullptr;
  core::MigrationCoordinator coordinator;
  sgxsim::Enclave* home = nullptr;
  sgxsim::Enclave* spare1 = nullptr;
  sgxsim::Enclave* spare2 = nullptr;

  SoakRig() : rt(options()), coordinator(rt) {
    xmpp::XmppServiceConfig config;
    config.instances = 1;  // multi-instance transfer keys pin placement
    config.trusted = true;
    service = xmpp::install_xmpp_service(rt, config);
    sup = &core::install_supervisor(rt, storm_opts());
    home = &rt.enclave("xmpp.e0");  // where install placed xmpp.i1
    spare1 = &rt.enclave("xmpp.spare1");
    spare2 = &rt.enclave("xmpp.spare2");
  }

  static core::RuntimeOptions options() {
    core::RuntimeOptions o;
    o.pool_nodes = 8192;
    o.node_payload_bytes = 2048;
    o.sched = core::SchedMode::kSteal;
    return o;
  }

  // Retries around kBusy: under the body-throw storm the actor may be
  // mid-restart exactly when we try to park it.
  core::MigrateResult migrate_with_retry(sgxsim::Enclave& target) {
    core::MigrateResult res = core::MigrateResult::kBusy;
    for (int attempt = 0; attempt < 200; ++attempt) {
      res = coordinator.migrate(*service.instances[0], target);
      if (res != core::MigrateResult::kBusy) break;
      std::this_thread::sleep_for(2ms);
    }
    return res;
  }
};

// Runs the alice↔bob echo exchange, invoking `mid_traffic(i)` after each
// message lands. Returns the number of acknowledged round trips.
template <typename MidTraffic>
int run_echo_soak(SoakRig& rig, int messages, MidTraffic mid_traffic) {
  xmpp::ClientReconnectPolicy reconnect;
  reconnect.max_attempts = 30;
  xmpp::Client alice, bob;
  alice.enable_reconnect(reconnect);
  bob.enable_reconnect(reconnect);
  EXPECT_TRUE(alice.connect(rig.service.port, "alice"));
  EXPECT_TRUE(bob.connect(rig.service.port, "bob"));

  std::atomic<bool> stop{false};
  std::thread echo([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto msg = bob.recv(50);
      if (msg.has_value() && msg->kind == "chat" && msg->decrypt_ok) {
        for (int r = 0; r < 40 && !bob.send_chat("alice", msg->body); ++r) {
          std::this_thread::sleep_for(5ms);
        }
      }
    }
  });

  auto deadline = std::chrono::steady_clock::now() + 120s;
  int delivered = 0;
  for (int i = 0; i < messages; ++i) {
    std::string payload = "mig-" + std::to_string(i);
    bool acked = false;
    while (!acked && std::chrono::steady_clock::now() < deadline) {
      alice.send_chat("bob", payload);
      auto resend_at = std::chrono::steady_clock::now() + 300ms;
      while (!acked && std::chrono::steady_clock::now() < resend_at) {
        auto msg = alice.recv(50);
        if (msg.has_value() && msg->kind == "chat" && msg->body == payload) {
          acked = true;
        }
      }
    }
    if (acked) ++delivered;
    mid_traffic(i);
  }
  stop = true;
  echo.join();
  return delivered;
}

TEST_F(MigrationSoakTest, XmppActorMigratesMidTrafficWithZeroAckedLoss) {
  SoakRig rig;
  ASSERT_TRUE(fp::set("actor.body.throw", "1%return"));
  rig.rt.start();

  // Bounce xmpp.i1 between its home enclave and a spare every few acked
  // messages, while the conversation keeps flowing.
  constexpr int kMessages = 25;
  int moves = 0;
  int delivered = run_echo_soak(rig, kMessages, [&](int i) {
    if (i % 5 != 2) return;
    sgxsim::Enclave& target = (moves % 2 == 0) ? *rig.spare1 : *rig.home;
    if (rig.migrate_with_retry(target) == core::MigrateResult::kOk) ++moves;
  });

  EXPECT_EQ(delivered, kMessages) << "an acknowledged round trip was lost";
  EXPECT_GE(moves, 2) << "the actor never actually migrated mid-traffic";
  core::MigrationStats stats = rig.coordinator.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(moves));
  EXPECT_EQ(rig.coordinator.pause_hist().count(),
            static_cast<std::uint64_t>(moves));

  fp::clear_all();
  std::this_thread::sleep_for(200ms);
  core::HealthSnapshot snap = rig.rt.health();
  EXPECT_EQ(snap.count_in_state(core::ActorState::kQuarantined), 0u);
  rig.rt.stop();
}

TEST_F(MigrationSoakTest, TransferDropRollsBackAndServiceKeepsEchoing) {
  SoakRig rig;
  ASSERT_TRUE(fp::set("actor.body.throw", "1%return"));
  rig.rt.start();

  constexpr int kMessages = 20;
  bool drop_done = false;
  bool recovered_move_done = false;
  int delivered = run_echo_soak(rig, kMessages, [&](int i) {
    if (i == 4) {
      // First migration attempt loses the bundle in flight: rollback must
      // restore the source copy and quarantine only this route.
      ASSERT_TRUE(fp::set("migrate.transfer.drop", "once"));
      core::MigrateResult res = rig.migrate_with_retry(*rig.spare1);
      EXPECT_EQ(res, core::MigrateResult::kTransferFailed);
      EXPECT_TRUE(rig.coordinator.route_quarantined(rig.home->id(),
                                                    rig.spare1->id()));
      EXPECT_EQ(rig.coordinator.migrate(*rig.service.instances[0],
                                        *rig.spare1),
                core::MigrateResult::kRouteQuarantined);
      drop_done = true;
    } else if (i == 12 && drop_done) {
      // The ACTOR was never quarantined: a clean route still works.
      core::MigrateResult res = rig.migrate_with_retry(*rig.spare2);
      EXPECT_EQ(res, core::MigrateResult::kOk);
      recovered_move_done = true;
    }
  });

  EXPECT_EQ(delivered, kMessages)
      << "rollback lost an acknowledged round trip";
  EXPECT_TRUE(drop_done);
  EXPECT_TRUE(recovered_move_done);
  core::MigrationStats stats = rig.coordinator.stats();
  EXPECT_EQ(stats.rolled_back, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(rig.service.instances[0]->placement(), rig.spare2->id());

  fp::clear_all();
  std::this_thread::sleep_for(200ms);
  core::HealthSnapshot snap = rig.rt.health();
  EXPECT_EQ(snap.count_in_state(core::ActorState::kQuarantined), 0u);
  rig.rt.stop();
}

}  // namespace
}  // namespace ea
