// Live actor migration tests (ctest label: migrate; tier-1).
//
// DESIGN.md §17 end to end, without fault injection (the rollback and
// duplicate-resume paths live in migration_fault_test.cpp):
//
//  * the monotonic-counter ticket has exactly one consume winner;
//  * POS partition export/import round-trips and export leaves no live keys;
//  * a pre-start migration moves placement AND the EPC accounting;
//  * every refusal code (not-migratable, untrusted, same placement, static
//    scheduler while running, unknown names) fires before any state moves;
//  * a live migration under the stealing scheduler mid-traffic loses and
//    reorders nothing on an encrypted channel rebound in place;
//  * per-enclave EPC accounting is visible through Runtime::health();
//  * the placement controller evicts the cheapest actor off an enclave
//    crossing the EPC watermark before the paging cliff.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/health.hpp"
#include "core/migration.hpp"
#include "core/runtime.hpp"
#include "core/worker.hpp"
#include "crypto/sha256.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/monotonic_counter.hpp"
#include "util/bytes.hpp"

namespace ea::core {
namespace {

using namespace std::chrono_literals;

bool eventually(std::function<bool()> pred,
                std::chrono::milliseconds limit = 10s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    sgxsim::cost_model().ecall_cycles = 0;
    sgxsim::cost_model().ocall_cycles = 0;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// A migratable actor whose private state is one counter; the export/import
// hooks round-trip it so a migration visibly carries state.
class MigratoryActor : public Actor {
 public:
  explicit MigratoryActor(std::string name) : Actor(std::move(name)) {}

  bool body() override { return false; }
  bool migratable() const override { return migratable_; }
  std::uint64_t state_bytes() const override { return state_bytes_; }

  util::Bytes export_state() override {
    util::Bytes out(8);
    util::store_le64(out.data(), value_);
    ++exports_;
    return out;
  }
  bool import_state(std::span<const std::uint8_t> state) override {
    if (state.size() != 8) return false;
    value_ = util::load_le64(state.data());
    ++imports_;
    return true;
  }
  void on_migrated(sgxsim::EnclaveId from, sgxsim::EnclaveId to) override {
    migrated_from_ = from;
    migrated_to_ = to;
  }

  bool migratable_ = true;
  std::uint64_t state_bytes_ = 4096;
  std::uint64_t value_ = 0;
  int exports_ = 0;
  int imports_ = 0;
  sgxsim::EnclaveId migrated_from_ = sgxsim::kUntrusted;
  sgxsim::EnclaveId migrated_to_ = sgxsim::kUntrusted;
};

TEST_F(MigrationTest, TicketConsumeHasExactlyOneWinner) {
  auto& svc = sgxsim::MonotonicCounterService::instance();
  const crypto::Sha256Digest ns = crypto::sha256("migration-test-ns");
  const std::uint64_t ticket = svc.increment_ns(ns, 7);
  EXPECT_EQ(svc.read_ns(ns, 7), ticket);
  // First consume of the expected value wins and advances the counter ...
  EXPECT_TRUE(svc.consume(ns, 7, ticket));
  // ... so the duplicate (a resume-twice fork) is refused, as is any stale
  // expectation.
  EXPECT_FALSE(svc.consume(ns, 7, ticket));
  EXPECT_FALSE(svc.consume(ns, 7, ticket - 1));
  EXPECT_EQ(svc.read_ns(ns, 7), ticket + 1);
  // Slots and namespaces are independent.
  EXPECT_EQ(svc.read_ns(ns, 8), 0u);
}

TEST_F(MigrationTest, PosPartitionExportImportRoundTrips) {
  pos::PosOptions options;
  options.bucket_count = 8;
  options.entry_count = 256;
  options.entry_payload = 128;
  pos::Pos source(options);

  auto key = [](const std::string& s) { return util::to_bytes(s); };
  ASSERT_TRUE(source.set(key("actor1/a"), key("v1")));
  ASSERT_TRUE(source.set(key("actor1/b"), key("v2")));
  ASSERT_TRUE(source.set(key("actor1/b"), key("v2-new")));  // latest wins
  ASSERT_TRUE(source.set(key("actor2/x"), key("other")));
  ASSERT_TRUE(source.erase(key("actor1/a")));
  ASSERT_TRUE(source.set(key("actor1/a"), key("v1-back")));

  util::Bytes prefix = key("actor1/");
  util::Bytes blob = source.export_partition(prefix);
  EXPECT_EQ(source.erase_partition(prefix), 2u);
  EXPECT_FALSE(source.get(key("actor1/a")).has_value());
  EXPECT_FALSE(source.get(key("actor1/b")).has_value());
  // Foreign partitions are untouched.
  ASSERT_TRUE(source.get(key("actor2/x")).has_value());

  pos::Pos target(options);
  ASSERT_TRUE(target.import_partition(blob));
  auto a = target.get(key("actor1/a"));
  auto b = target.get(key("actor1/b"));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, key("v1-back"));
  EXPECT_EQ(*b, key("v2-new"));
  EXPECT_FALSE(target.get(key("actor2/x")).has_value());

  // Truncated blobs are rejected, not misparsed.
  util::Bytes broken(blob.begin(), blob.begin() + blob.size() / 2);
  pos::Pos scratch(options);
  EXPECT_FALSE(scratch.import_partition(broken));
}

TEST_F(MigrationTest, PreStartMigrationMovesStateAndEpcAccounting) {
  Runtime rt;
  sgxsim::Enclave& src = rt.enclave("pre.src");
  sgxsim::Enclave& dst = rt.enclave("pre.dst");
  // Enclave creation commits a baseline (SECS/TCS/heap pages); the actor's
  // accounting rides on top of it.
  const std::uint64_t src_base = src.committed_bytes();
  const std::uint64_t dst_base = dst.committed_bytes();
  auto owned = std::make_unique<MigratoryActor>("pre.actor");
  MigratoryActor* actor = owned.get();
  actor->value_ = 42;
  rt.add_actor(std::move(owned), "pre.src");
  ASSERT_EQ(src.committed_bytes(), src_base + actor->state_bytes());
  ASSERT_EQ(dst.committed_bytes(), dst_base);

  MigrationCoordinator coordinator(rt);
  EXPECT_EQ(coordinator.migrate("pre.actor", "pre.dst"), MigrateResult::kOk);

  EXPECT_EQ(actor->placement(), dst.id());
  EXPECT_EQ(actor->lifecycle(), ActorState::kRunnable);
  EXPECT_EQ(actor->value_, 42u);
  EXPECT_EQ(actor->exports_, 1);
  EXPECT_EQ(actor->imports_, 1);
  EXPECT_EQ(actor->migrated_from_, src.id());
  EXPECT_EQ(actor->migrated_to_, dst.id());
  EXPECT_EQ(src.committed_bytes(), src_base);
  EXPECT_EQ(dst.committed_bytes(), dst_base + actor->state_bytes());

  MigrationStats stats = coordinator.stats();
  EXPECT_EQ(stats.attempted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rolled_back, 0u);
  EXPECT_EQ(coordinator.pause_hist().count(), 1u);
}

TEST_F(MigrationTest, RefusalCodesFireBeforeAnyStateMoves) {
  Runtime rt;
  rt.enclave("ref.src");
  sgxsim::Enclave& dst = rt.enclave("ref.dst");
  auto owned = std::make_unique<MigratoryActor>("ref.actor");
  MigratoryActor* actor = owned.get();
  rt.add_actor(std::move(owned), "ref.src");
  auto untrusted_owned = std::make_unique<MigratoryActor>("ref.untrusted");
  MigratoryActor* untrusted = untrusted_owned.get();
  rt.add_actor(std::move(untrusted_owned), "");
  rt.add_worker("ref.w", {}, {"ref.actor", "ref.untrusted"});

  MigrationCoordinator coordinator(rt);
  EXPECT_EQ(coordinator.migrate("no-such-actor", "ref.dst"),
            MigrateResult::kNotFound);
  EXPECT_EQ(coordinator.migrate(*untrusted, dst), MigrateResult::kNotMigratable);
  actor->migratable_ = false;
  EXPECT_EQ(coordinator.migrate(*actor, dst), MigrateResult::kNotMigratable);
  actor->migratable_ = true;
  sgxsim::Enclave& src = rt.enclave("ref.src");
  EXPECT_EQ(coordinator.migrate(*actor, src), MigrateResult::kSamePlacement);

  // The static scheduler's enter-once fast path cannot follow a placement
  // change, so live migration is refused while it runs.
  rt.start();
  EXPECT_EQ(coordinator.migrate(*actor, dst), MigrateResult::kSchedUnsupported);
  rt.stop();

  EXPECT_EQ(actor->placement(), src.id());
  EXPECT_EQ(coordinator.stats().attempted, 0u);
}

// --- live migration under the stealing scheduler ----------------------------

// Untrusted driver: window-sends sequence numbers and asserts the echoes
// come back complete and strictly in order — the zero-loss/zero-reorder
// probe for migration mid-traffic.
class PingActor : public Actor {
 public:
  PingActor(std::string name, std::uint64_t total)
      : Actor(std::move(name)), total_(total) {}

  void construct(Runtime&) override { end_ = connect("mig.chan"); }

  bool body() override {
    bool progress = false;
    while (concurrent::NodeLease lease = end_->recv()) {
      progress = true;
      if (lease->data().size() != 8) {
        violations_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t seq = util::load_le64(lease->data().data());
      if (seq != acked_.load(std::memory_order_relaxed)) {
        violations_.fetch_add(1, std::memory_order_relaxed);
      }
      acked_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t acked = acked_.load(std::memory_order_relaxed);
    while (next_ < total_ && next_ < acked + 32) {
      std::uint8_t wire[8];
      util::store_le64(wire, next_);
      if (!end_->send(std::span<const std::uint8_t>(wire, 8))) break;
      ++next_;
      progress = true;
    }
    return progress;
  }

  std::uint64_t acked() const noexcept {
    return acked_.load(std::memory_order_relaxed);
  }
  std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }

 private:
  ChannelEnd* end_ = nullptr;
  std::uint64_t total_;
  std::uint64_t next_ = 0;
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> violations_{0};
};

// Enclaved echo with migratable private state (its echo count).
class EchoActor : public MigratoryActor {
 public:
  using MigratoryActor::MigratoryActor;

  void construct(Runtime&) override { end_ = connect("mig.chan"); }

  bool body() override {
    bool progress = false;
    while (concurrent::NodeLease lease = end_->recv()) {
      ++value_;  // private state the migration must carry
      end_->send(lease->data());
      progress = true;
    }
    return progress;
  }

 private:
  ChannelEnd* end_ = nullptr;
};

TEST_F(MigrationTest, LiveMigrationLosesNoMessageOnEncryptedChannel) {
  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  rt.enclave("live.e0");
  sgxsim::Enclave& e1 = rt.enclave("live.e1");
  sgxsim::Enclave& e2 = rt.enclave("live.e2");

  constexpr std::uint64_t kTotal = 60000;
  // The ping side sits in its own enclave so the channel crosses enclave
  // boundaries (and is transparently encrypted) before AND after every hop.
  auto ping_owned = std::make_unique<PingActor>("live.ping", kTotal);
  PingActor* ping = ping_owned.get();
  rt.add_actor(std::move(ping_owned), "live.e0");
  auto echo_owned = std::make_unique<EchoActor>("live.echo");
  EchoActor* echo = echo_owned.get();
  rt.add_actor(std::move(echo_owned), "live.e1");
  rt.add_worker("live.w1", {}, {"live.ping"});
  rt.add_worker("live.w2", {}, {"live.echo"});
  rt.start();

  MigrationCoordinator coordinator(rt);
  ASSERT_TRUE(eventually([&] { return ping->acked() > 100; }));
  const std::uint64_t acked_before_first_move = ping->acked();

  // Bounce the echo actor between the enclaves mid-traffic; the channel is
  // encrypted throughout (distinct enclave pair) but rekeys per rebind.
  int moves = 0;
  auto move_deadline = std::chrono::steady_clock::now() + 10s;
  while (moves < 4 && ping->acked() < kTotal &&
         std::chrono::steady_clock::now() < move_deadline) {
    sgxsim::Enclave& target = (echo->placement() == e1.id()) ? e2 : e1;
    MigrateResult r = coordinator.migrate(*echo, target);
    ASSERT_TRUE(r == MigrateResult::kOk || r == MigrateResult::kBusy)
        << to_string(r);
    if (r == MigrateResult::kOk) ++moves;
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GE(moves, 1);
  // The first move happened while the stream was far from done.
  EXPECT_LT(acked_before_first_move, kTotal);

  EXPECT_TRUE(eventually([&] { return ping->acked() == kTotal; }))
      << "acked " << ping->acked() << " of " << kTotal;
  rt.stop();

  EXPECT_EQ(ping->violations(), 0u) << "echo stream lost or reordered";
  EXPECT_EQ(echo->value_, kTotal);  // private state carried across every hop
  Channel& chan = rt.channel("mig.chan");
  EXPECT_TRUE(chan.encrypted());
  EXPECT_EQ(chan.auth_failures(), 0u);
  EXPECT_EQ(chan.frame_errors(), 0u);

  MigrationStats stats = coordinator.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(moves));
  EXPECT_EQ(stats.rolled_back, 0u);
  EXPECT_EQ(coordinator.pause_hist().count(),
            static_cast<std::uint64_t>(moves));
}

TEST_F(MigrationTest, EpcAccountingVisibleInHealth) {
  Runtime rt;
  const std::uint64_t base = rt.enclave("health.e1").committed_bytes();
  auto owned = std::make_unique<MigratoryActor>("health.actor");
  owned->state_bytes_ = 12345;
  rt.add_actor(std::move(owned), "health.e1");

  HealthSnapshot snap = rt.health();
  ASSERT_EQ(snap.enclaves.size(), 1u);
  const EnclaveHealth* e = snap.enclave_by_name("health.e1");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->committed, base + 12345u);
  EXPECT_EQ(e->epc_usable, sgxsim::cost_model().epc_usable_bytes);
  EXPECT_EQ(snap.enclave_by_name("no-such-enclave"), nullptr);
  // The human-readable rendering carries the accounting too.
  EXPECT_NE(snap.to_string().find(std::to_string(e->committed) +
                                  " bytes committed"),
            std::string::npos);
}

TEST_F(MigrationTest, PlacementControllerEvictsBeforeEpcWatermark) {
  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  sgxsim::Enclave& hot = rt.enclave("wm.hot");
  sgxsim::Enclave& cold = rt.enclave("wm.cold");

  // 600 + 300 KiB of actor state on top of the enclave-creation baseline.
  // The budget is chosen so the watermark line sits at baseline + 750 KiB:
  // the loaded enclave (baseline + 900 KiB) is over the line but under the
  // cliff, and EITHER actor alone is under it — exactly one eviction (of
  // the cheaper actor) reaches a steady state with no ping-pong.
  const std::uint64_t base = hot.committed_bytes();
  const std::uint64_t cold_base = cold.committed_bytes();
  auto big_owned = std::make_unique<MigratoryActor>("wm.big");
  MigratoryActor* big = big_owned.get();
  big->state_bytes_ = 600 * 1024;
  rt.add_actor(std::move(big_owned), "wm.hot");
  auto small_owned = std::make_unique<MigratoryActor>("wm.small");
  MigratoryActor* small = small_owned.get();
  small->state_bytes_ = 300 * 1024;
  rt.add_actor(std::move(small_owned), "wm.hot");

  MigrationCoordinator coordinator(rt);
  PlacementControllerOptions po;
  po.watermark = 0.80;
  po.epc_budget_bytes =
      static_cast<std::uint64_t>((base + 750.0 * 1024) / 0.80);
  po.sweep_interval_us = 200;
  auto ctl_owned = std::make_unique<PlacementControllerActor>(coordinator, po);
  PlacementControllerActor* ctl = ctl_owned.get();
  rt.add_actor(std::move(ctl_owned), "");
  rt.add_worker("wm.w1", {}, {"wm.big", "wm.small"});
  rt.add_worker("wm.w2", {}, {"core.placement"});
  rt.start();

  // One eviction: the CHEAPEST actor moves off the hot enclave, and the
  // enclave drops below the watermark before ever reaching the cliff.
  ASSERT_TRUE(eventually([&] { return ctl->migrations_triggered() >= 1; }));
  ASSERT_TRUE(eventually([&] { return small->placement() == cold.id(); }));
  EXPECT_EQ(big->placement(), hot.id()) << "controller moved the wrong actor";
  // Let several more sweeps run: under the watermark, nothing else moves.
  std::this_thread::sleep_for(50ms);
  rt.stop();

  HealthSnapshot snap = rt.health();
  EXPECT_EQ(snap.enclave_by_name("wm.hot")->committed,
            base + big->state_bytes_);
  EXPECT_EQ(snap.enclave_by_name("wm.cold")->committed,
            cold_base + small->state_bytes_);
  // The hot enclave never reached the cliff: accounting peaked at the
  // pre-eviction total, below the budget.
  EXPECT_LT(base + big->state_bytes_ + small->state_bytes_,
            po.epc_budget_bytes);
  EXPECT_EQ(ctl->migrations_triggered(), 1u);
  EXPECT_GE(ctl->probes(), 1u);
  EXPECT_EQ(coordinator.stats().completed, 1u);
}

}  // namespace
}  // namespace ea::core
