// Network fault-injection tests (ctest label: fault).
//
// Drives READER/WRITER/CLOSER against real kernel sockets while the
// failpoints in Socket::read_nb/write_nb/accept_nb/connect_to inject short
// counts, EAGAIN storms and connection resets. The invariants under test:
// no byte is lost or reordered by short counts, no node ever leaks, and
// teardown happens exactly once. Bodies are invoked directly (no worker
// threads), so every schedule is deterministic.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "net/actors.hpp"
#include "net/socket.hpp"
#include "net/socket_table.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace ea::net {
namespace {

using namespace std::chrono_literals;

class NetFaultTest : public ::testing::Test {
 protected:
  NetFaultTest()
      : arena_(32, 1024),
        table_(std::make_shared<SocketTable>()),
        reader_("reader", table_, pool_),
        writer_("writer", table_),
        closer_("closer", table_) {
    pool_.adopt(arena_);
    fp::clear_all();
    fp::reset_counters();
  }
  ~NetFaultTest() override { fp::clear_all(); }

  // Connected AF_UNIX stream pair: one end registered in the table (the
  // side the system actors operate on), the other kept as the raw peer.
  SocketId make_pair(Socket& peer) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(
        ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
    peer = Socket(fds[1]);
    return table_->add(Socket(fds[0]));
  }

  concurrent::Node* node() {
    concurrent::Node* n = pool_.get();
    EXPECT_NE(n, nullptr);
    return n;
  }

  void subscribe_reader(SocketId id, concurrent::Mbox& data) {
    ReadSubscribe sub;
    sub.socket = id;
    sub.data = &data;
    concurrent::Node* n = node();
    write_struct(*n, sub);
    reader_.requests().push(n);
  }

  // Drains everything currently readable on `peer` into a string.
  std::string drain_peer(Socket& peer) {
    std::string out;
    util::Bytes buf(2048, 0);
    long n;
    while ((n = peer.read_nb(buf)) > 0) {
      out.append(reinterpret_cast<char*>(buf.data()),
                 static_cast<std::size_t>(n));
    }
    return out;
  }

  void expect_pool_full() { EXPECT_EQ(pool_.size(), arena_.count()); }

  concurrent::NodeArena arena_;
  concurrent::Pool pool_;
  std::shared_ptr<SocketTable> table_;
  ReaderActor reader_;
  WriterActor writer_;
  CloserActor closer_;
};

TEST_F(NetFaultTest, WriterDeliversEverythingDespiteShortWrites) {
  Socket peer;
  SocketId id = make_pair(peer);

  std::string expected;
  for (int i = 0; i < 3; ++i) {
    std::string chunk(100, static_cast<char>('a' + i));
    expected += chunk;
    concurrent::Node* n = node();
    n->fill(chunk);
    n->tag = static_cast<std::uint64_t>(id);
    writer_.input().push(n);
  }

  // Every send is capped at 7 bytes: the writer must advance its offset by
  // the short count and keep going, delivering the exact byte stream.
  ASSERT_TRUE(fp::set("net.socket.write", "return(7)"));
  std::string received;
  for (int round = 0; round < 200 && received.size() < expected.size();
       ++round) {
    writer_.body();
    received += drain_peer(peer);
  }
  EXPECT_EQ(received, expected);
  EXPECT_GE(fp::hits("net.socket.write"), expected.size() / 7);
  expect_pool_full();
}

TEST_F(NetFaultTest, WriterHoldsPendingAcrossEagainStormWithoutLoss) {
  Socket peer;
  SocketId id = make_pair(peer);

  concurrent::Node* n = node();
  n->fill("survives the storm");
  n->tag = static_cast<std::uint64_t>(id);
  writer_.input().push(n);

  // A storm of EAGAINs: nothing may reach the wire, but the node must stay
  // parked in the writer (not leaked back to the pool, not dropped).
  ASSERT_TRUE(fp::set("net.socket.write", "return(0)"));
  for (int i = 0; i < 10; ++i) writer_.body();
  EXPECT_TRUE(drain_peer(peer).empty());
  EXPECT_EQ(pool_.size(), arena_.count() - 1);  // exactly the parked node

  fp::clear("net.socket.write");
  writer_.body();
  EXPECT_EQ(drain_peer(peer), "survives the storm");
  expect_pool_full();
}

TEST_F(NetFaultTest, WriterMidFrameResetReleasesAllPendingNodes) {
  // Big nodes + a tiny kernel send buffer so the first body() parks a node
  // mid-write (offset > 0) with more queued behind it.
  concurrent::NodeArena big_arena(4, 64 * 1024);
  concurrent::Pool big_pool;
  big_pool.adopt(big_arena);

  Socket peer;
  SocketId id = make_pair(peer);
  table_->with(id, [](Socket& s) {
    int small = 4608;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  });

  for (int i = 0; i < 4; ++i) {
    concurrent::Node* n = big_pool.get();
    ASSERT_NE(n, nullptr);
    std::string chunk(60 * 1024, static_cast<char>('A' + i));
    n->fill(chunk);
    n->tag = static_cast<std::uint64_t>(id);
    writer_.input().push(n);
  }
  writer_.body();  // fills the kernel buffer, then EAGAIN parks the rest
  EXPECT_FALSE(drain_peer(peer).empty());
  EXPECT_LT(big_pool.size(), big_arena.count()) << "expected parked nodes";

  // The peer resets the connection mid-stream: the writer must drop the
  // whole per-socket queue and release every node exactly once.
  ASSERT_TRUE(fp::set("net.socket.write", "return(-1)"));
  writer_.body();
  EXPECT_EQ(big_pool.size(), big_arena.count());

  // The dropped socket is gone from the writer's state: later rounds are
  // clean no-ops.
  fp::clear("net.socket.write");
  writer_.body();
  EXPECT_EQ(big_pool.size(), big_arena.count());
  expect_pool_full();
}

TEST_F(NetFaultTest, CloserTearsDownExactlyOnce) {
  Socket peer;
  SocketId id = make_pair(peer);
  ASSERT_NE(table_->fd(id), -1);

  // Three close requests for the same id plus one for a stale id: the
  // socket is closed exactly once and the duplicates are harmless.
  for (int i = 0; i < 3; ++i) {
    concurrent::Node* n = node();
    n->tag = static_cast<std::uint64_t>(id);
    closer_.input().push(n);
  }
  concurrent::Node* stale = node();
  stale->tag = static_cast<std::uint64_t>(id) + 9999;
  closer_.input().push(stale);

  closer_.body();
  EXPECT_EQ(closer_.closes(), 1u);
  EXPECT_EQ(table_->fd(id), -1);
  closer_.body();
  EXPECT_EQ(closer_.closes(), 1u);
  expect_pool_full();
}

TEST_F(NetFaultTest, ReaderShortReadsPreserveStreamContentAndOrder) {
  Socket peer;
  SocketId id = make_pair(peer);
  concurrent::Mbox data;
  subscribe_reader(id, data);
  reader_.body();  // consume the subscription

  std::string expected;
  for (int i = 0; i < 8; ++i) expected += "chunk" + std::to_string(i) + "|";
  ASSERT_EQ(peer.write_nb(util::to_bytes(expected)),
            static_cast<long>(expected.size()));

  // Every recv is capped at 7 bytes: the reader needs many more nodes, but
  // the reassembled stream must be byte-identical and in order.
  ASSERT_TRUE(fp::set("net.socket.read", "return(7)"));
  std::string received;
  for (int round = 0; round < 200 && received.size() < expected.size();
       ++round) {
    reader_.body();
    concurrent::Node* n;
    while ((n = data.pop()) != nullptr) {
      concurrent::NodeLease lease(n);
      EXPECT_LE(n->size, 7u);
      EXPECT_EQ(static_cast<SocketId>(n->tag), id);
      received += std::string(n->view());
    }
  }
  EXPECT_EQ(received, expected);
  expect_pool_full();
}

TEST_F(NetFaultTest, ReaderEagainStormLeaksNothingThenRecovers) {
  Socket peer;
  SocketId id = make_pair(peer);
  concurrent::Mbox data;
  subscribe_reader(id, data);
  reader_.body();

  ASSERT_EQ(peer.write_nb(util::to_bytes("delayed data")), 12);
  // The socket pretends to be dry: each round the reader draws a node,
  // sees the stall, and must return the node — a storm leaks nothing.
  ASSERT_TRUE(fp::set("net.socket.read", "return(0)"));
  for (int i = 0; i < 50; ++i) reader_.body();
  EXPECT_TRUE(data.empty());
  expect_pool_full();

  fp::clear("net.socket.read");
  reader_.body();
  concurrent::NodeLease lease(data.pop());
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->view(), "delayed data");
  lease.reset();
  expect_pool_full();
}

TEST_F(NetFaultTest, ReaderInjectedResetDeliversOneEofAndDropsSubscription) {
  Socket peer;
  SocketId id = make_pair(peer);
  concurrent::Mbox data;
  subscribe_reader(id, data);
  reader_.body();

  // A reset mid-connection: exactly one zero-size close-signal node is
  // delivered and the subscription is dropped — further rounds must not
  // read the (still valid) socket or emit more EOF nodes.
  ASSERT_TRUE(fp::set("net.socket.read", "once(-1)"));
  reader_.body();
  {
    concurrent::NodeLease lease(data.pop());
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->size, 0u);
    EXPECT_EQ(static_cast<SocketId>(lease->tag), id);
  }
  ASSERT_EQ(peer.write_nb(util::to_bytes("after reset")), 11);
  for (int i = 0; i < 10; ++i) reader_.body();
  EXPECT_TRUE(data.empty());
  expect_pool_full();
}

TEST_F(NetFaultTest, ReaderBacksOffOnPoolExhaustionWithoutDroppingData) {
  Socket peer;
  SocketId id = make_pair(peer);
  concurrent::Mbox data;
  subscribe_reader(id, data);
  reader_.body();

  ASSERT_EQ(peer.write_nb(util::to_bytes("backpressure")), 12);
  // Simulated pool exhaustion: the reader must skip the round — no data
  // node, but also no dropped subscription and no lost kernel bytes.
  ASSERT_TRUE(fp::set("net.reader.pool_empty", "return"));
  for (int i = 0; i < 20; ++i) reader_.body();
  EXPECT_TRUE(data.empty());
  expect_pool_full();

  fp::clear("net.reader.pool_empty");
  reader_.body();
  concurrent::NodeLease lease(data.pop());
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->view(), "backpressure");
}

TEST_F(NetFaultTest, AcceptFailureIsTransient) {
  Socket listener = Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());
  Socket client = Socket::connect_to("127.0.0.1", listener.local_port());
  ASSERT_TRUE(client.valid());

  // Simulated EMFILE / aborted handshake: accept_nb reports nothing even
  // though a connection is pending; once the fault clears the connection
  // is still there to accept.
  ASSERT_TRUE(fp::set("net.socket.accept", "return"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(listener.accept_nb().has_value());
    std::this_thread::sleep_for(1ms);
  }
  fp::clear("net.socket.accept");

  std::optional<Socket> server;
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!server.has_value() && std::chrono::steady_clock::now() < deadline) {
    server = listener.accept_nb();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(server.has_value());
}

TEST_F(NetFaultTest, ConnectFailureYieldsInvalidSocketOnce) {
  Socket listener = Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());

  ASSERT_TRUE(fp::set("net.socket.connect", "once"));
  Socket failed = Socket::connect_to("127.0.0.1", listener.local_port());
  EXPECT_FALSE(failed.valid());

  Socket ok = Socket::connect_to("127.0.0.1", listener.local_port());
  EXPECT_TRUE(ok.valid());
}

}  // namespace
}  // namespace ea::net
