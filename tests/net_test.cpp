#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/pool.hpp"
#include "net/actors.hpp"
#include "net/socket.hpp"
#include "core/runtime.hpp"
#include "net/socket_table.hpp"
#include "util/bytes.hpp"

namespace ea::net {
namespace {

using namespace std::chrono_literals;

// Drives a set of actors until `pred` holds or the deadline passes. The
// system actors are ordinary objects; invoking body() directly makes tests
// deterministic without worker threads.
template <typename Pred>
bool drive(std::initializer_list<core::Actor*> actors, Pred pred,
           std::chrono::milliseconds limit = 5s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    for (core::Actor* actor : actors) actor->body();
    std::this_thread::sleep_for(100us);
  }
  return pred();
}

TEST(Socket, ListenConnectRoundTrip) {
  Socket listener = Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());
  std::uint16_t port = listener.local_port();
  ASSERT_NE(port, 0);

  Socket client = Socket::connect_to("127.0.0.1", port);
  ASSERT_TRUE(client.valid());

  std::optional<Socket> server;
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!server.has_value() && std::chrono::steady_clock::now() < deadline) {
    server = listener.accept_nb();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(server.has_value());

  util::Bytes out = util::to_bytes("over the wire");
  long wrote = client.write_nb(out);
  // Non-blocking connect may still be settling; retry briefly.
  while (wrote == 0) {
    std::this_thread::sleep_for(1ms);
    wrote = client.write_nb(out);
  }
  ASSERT_EQ(static_cast<std::size_t>(wrote), out.size());

  util::Bytes in(64, 0);
  long got = 0;
  deadline = std::chrono::steady_clock::now() + 2s;
  while (got <= 0 && std::chrono::steady_clock::now() < deadline) {
    got = server->read_nb(in);
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GT(got, 0);
  EXPECT_EQ(util::to_string(std::span<const std::uint8_t>(
                in.data(), static_cast<std::size_t>(got))),
            "over the wire");
}

TEST(Socket, ReadOnClosedPeerReturnsEof) {
  Socket listener = Socket::listen_on(0);
  Socket client = Socket::connect_to("127.0.0.1", listener.local_port());
  std::optional<Socket> server;
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!server.has_value() && std::chrono::steady_clock::now() < deadline) {
    server = listener.accept_nb();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(server.has_value());
  client.close();
  util::Bytes buf(16, 0);
  long n = 0;
  deadline = std::chrono::steady_clock::now() + 2s;
  while (n == 0 && std::chrono::steady_clock::now() < deadline) {
    n = server->read_nb(buf);
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(n, -1);
}

TEST(SocketTableTest, AddLookupClose) {
  SocketTable table;
  Socket listener = Socket::listen_on(0);
  int fd = listener.fd();
  SocketId id = table.add(std::move(listener));
  EXPECT_EQ(table.fd(id), fd);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.close(id));
  EXPECT_EQ(table.fd(id), -1);
  EXPECT_FALSE(table.close(id));
}

class NetActorsTest : public ::testing::Test {
 protected:
  NetActorsTest()
      : arena_(256, 1024),
        table_(std::make_shared<SocketTable>()),
        opener_("opener", table_, pool_),
        accepter_("accepter", table_, pool_),
        reader_("reader", table_, pool_),
        writer_("writer", table_),
        closer_("closer", table_) {
    pool_.adopt(arena_);
  }

  concurrent::Node* node() {
    concurrent::Node* n = pool_.get();
    EXPECT_NE(n, nullptr);
    return n;
  }

  concurrent::NodeArena arena_;
  concurrent::Pool pool_;
  std::shared_ptr<SocketTable> table_;
  OpenerActor opener_;
  AccepterActor accepter_;
  ReaderActor reader_;
  WriterActor writer_;
  CloserActor closer_;
};

TEST_F(NetActorsTest, OpenerCreatesListener) {
  concurrent::Mbox reply;
  OpenRequest req;
  req.kind = OpenRequest::kListen;
  req.cookie = 77;
  req.reply = &reply;
  concurrent::Node* n = node();
  write_struct(*n, req);
  opener_.requests().push(n);

  ASSERT_TRUE(drive({&opener_}, [&] { return !reply.empty(); }));
  concurrent::NodeLease lease(reply.pop());
  OpenReply out;
  ASSERT_TRUE(read_struct(*lease.get(), out));
  EXPECT_GE(out.id, 0);
  EXPECT_EQ(out.cookie, 77u);
  EXPECT_NE(out.port, 0);
}

TEST_F(NetActorsTest, OpenerReportsConnectFailureGracefully) {
  // Connecting to an unroutable port may still "succeed" asynchronously at
  // the socket layer; instead test a malformed host, which fails fast.
  concurrent::Mbox reply;
  OpenRequest req;
  req.kind = OpenRequest::kConnect;
  req.port = 1;
  std::snprintf(req.host, sizeof(req.host), "not-an-ip");
  req.reply = &reply;
  concurrent::Node* n = node();
  write_struct(*n, req);
  opener_.requests().push(n);

  ASSERT_TRUE(drive({&opener_}, [&] { return !reply.empty(); }));
  concurrent::NodeLease lease(reply.pop());
  OpenReply out;
  ASSERT_TRUE(read_struct(*lease.get(), out));
  EXPECT_LT(out.id, 0);
}

TEST_F(NetActorsTest, FullPipelineEcho) {
  // OPENER(listen) -> ACCEPTER -> READER -> WRITER -> CLOSER, exercised as
  // a real loopback echo.
  concurrent::Mbox open_reply;
  {
    OpenRequest req;
    req.kind = OpenRequest::kListen;
    req.reply = &open_reply;
    concurrent::Node* n = node();
    write_struct(*n, req);
    opener_.requests().push(n);
  }
  ASSERT_TRUE(drive({&opener_}, [&] { return !open_reply.empty(); }));
  OpenReply listen_reply;
  {
    concurrent::NodeLease lease(open_reply.pop());
    ASSERT_TRUE(read_struct(*lease.get(), listen_reply));
  }
  ASSERT_GE(listen_reply.id, 0);

  // Subscribe the accepter.
  concurrent::Mbox accepted;
  {
    AcceptSubscribe sub;
    sub.listener = listen_reply.id;
    sub.reply = &accepted;
    concurrent::Node* n = node();
    write_struct(*n, sub);
    accepter_.requests().push(n);
  }

  // A plain client connects from a helper thread.
  Socket client = Socket::connect_to("127.0.0.1", listen_reply.port);
  ASSERT_TRUE(client.valid());

  ASSERT_TRUE(drive({&accepter_}, [&] { return !accepted.empty(); }));
  SocketId conn_id;
  {
    concurrent::NodeLease lease(accepted.pop());
    conn_id = static_cast<SocketId>(lease->tag);
  }

  // Subscribe the new connection to the reader.
  concurrent::Mbox data;
  {
    ReadSubscribe sub;
    sub.socket = conn_id;
    sub.data = &data;
    concurrent::Node* n = node();
    write_struct(*n, sub);
    reader_.requests().push(n);
  }

  // Client sends; reader should deliver.
  util::Bytes payload = util::to_bytes("echo me");
  while (client.write_nb(payload) == 0) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(drive({&reader_}, [&] { return !data.empty(); }));
  {
    concurrent::NodeLease lease(data.pop());
    EXPECT_EQ(lease->view(), "echo me");
    EXPECT_EQ(static_cast<SocketId>(lease->tag), conn_id);
    // Echo it back through the writer.
    concurrent::Node* out = node();
    out->fill(lease->view());
    out->tag = lease->tag;
    writer_.input().push(out);
  }
  util::Bytes rx(64, 0);
  long got = 0;
  ASSERT_TRUE(drive({&writer_}, [&] {
    long n = client.read_nb(rx);
    if (n > 0) got = n;
    return got > 0;
  }));
  EXPECT_EQ(util::to_string(std::span<const std::uint8_t>(
                rx.data(), static_cast<std::size_t>(got))),
            "echo me");

  // Close via the closer; the reader must then deliver an EOF node.
  {
    concurrent::Node* n = node();
    n->tag = static_cast<std::uint64_t>(conn_id);
    closer_.input().push(n);
  }
  ASSERT_TRUE(drive({&closer_, &reader_}, [&] { return !data.empty(); }));
  {
    concurrent::NodeLease lease(data.pop());
    EXPECT_EQ(lease->size, 0u);
  }
  EXPECT_EQ(table_->fd(conn_id), -1);
}

TEST_F(NetActorsTest, ReaderDeliversEofOnPeerClose) {
  Socket listener = Socket::listen_on(0);
  Socket client = Socket::connect_to("127.0.0.1", listener.local_port());
  std::optional<Socket> server;
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!server.has_value() && std::chrono::steady_clock::now() < deadline) {
    server = listener.accept_nb();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(server.has_value());
  SocketId id = table_->add(std::move(*server));

  concurrent::Mbox data;
  {
    ReadSubscribe sub;
    sub.socket = id;
    sub.data = &data;
    concurrent::Node* n = node();
    write_struct(*n, sub);
    reader_.requests().push(n);
  }
  client.close();
  ASSERT_TRUE(drive({&reader_}, [&] { return !data.empty(); }));
  concurrent::NodeLease lease(data.pop());
  EXPECT_EQ(lease->size, 0u);
  EXPECT_EQ(static_cast<SocketId>(lease->tag), id);
}

TEST_F(NetActorsTest, WriterHandlesLargeMessageInChunks) {
  Socket listener = Socket::listen_on(0);
  Socket client = Socket::connect_to("127.0.0.1", listener.local_port());
  std::optional<Socket> server;
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!server.has_value() && std::chrono::steady_clock::now() < deadline) {
    server = listener.accept_nb();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(server.has_value());
  SocketId id = table_->add(std::move(*server));

  // Queue several writes; total larger than a single node.
  std::string expected;
  for (int i = 0; i < 10; ++i) {
    std::string chunk = util::random_printable(static_cast<std::uint64_t>(i), 900);
    expected += chunk;
    concurrent::Node* n = node();
    n->fill(chunk);
    n->tag = static_cast<std::uint64_t>(id);
    writer_.input().push(n);
  }

  std::string received;
  util::Bytes buf(4096, 0);
  ASSERT_TRUE(drive({&writer_}, [&] {
    long n = client.read_nb(buf);
    if (n > 0) {
      received.append(reinterpret_cast<char*>(buf.data()),
                      static_cast<std::size_t>(n));
    }
    return received.size() >= expected.size();
  }));
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace ea::net

namespace ea::net {
namespace {

TEST(InstallNetworking, FullRuntimeEchoThroughSystemActors) {
  // The whole subsystem wired into a runtime with a real worker: an
  // application actor opens a listener via OPENER, accepts via ACCEPTER,
  // echoes via READER/WRITER, closes via CLOSER.
  core::Runtime rt;
  NetSubsystem net = install_networking(rt, "netw", {0});

  concurrent::Mbox open_reply;
  concurrent::Mbox accepted;
  concurrent::Mbox data;
  rt.start();

  // Open a listener.
  {
    concurrent::Node* n = rt.public_pool().get();
    OpenRequest req;
    req.kind = OpenRequest::kListen;
    req.reply = &open_reply;
    write_struct(*n, req);
    net.opener->requests().push(n);
  }
  OpenReply listen_reply;
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    concurrent::Node* n = nullptr;
    while (n == nullptr && std::chrono::steady_clock::now() < deadline) {
      n = open_reply.pop();
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_NE(n, nullptr);
    concurrent::NodeLease lease(n);
    ASSERT_TRUE(read_struct(*n, listen_reply));
    ASSERT_GE(listen_reply.id, 0);
  }

  // Subscribe accepts, connect a client via the OPENER's connect path.
  {
    concurrent::Node* n = rt.public_pool().get();
    AcceptSubscribe sub;
    sub.listener = listen_reply.id;
    sub.reply = &accepted;
    write_struct(*n, sub);
    net.accepter->requests().push(n);
  }
  concurrent::Mbox connect_reply;
  {
    concurrent::Node* n = rt.public_pool().get();
    OpenRequest req;
    req.kind = OpenRequest::kConnect;
    req.port = listen_reply.port;
    std::snprintf(req.host, sizeof(req.host), "127.0.0.1");
    req.reply = &connect_reply;
    req.cookie = 5;
    write_struct(*n, req);
    net.opener->requests().push(n);
  }
  OpenReply client_reply;
  SocketId server_conn = -1;
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    bool have_client = false, have_server = false;
    while ((!have_client || !have_server) &&
           std::chrono::steady_clock::now() < deadline) {
      if (concurrent::Node* n = connect_reply.pop()) {
        concurrent::NodeLease lease(n);
        ASSERT_TRUE(read_struct(*n, client_reply));
        have_client = true;
      }
      if (concurrent::Node* n = accepted.pop()) {
        concurrent::NodeLease lease(n);
        server_conn = static_cast<SocketId>(n->tag);
        have_server = true;
      }
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_GE(client_reply.id, 0);
    ASSERT_GE(server_conn, 0);
  }

  // Server side reads; client writes through the WRITER.
  {
    concurrent::Node* n = rt.public_pool().get();
    ReadSubscribe sub;
    sub.socket = server_conn;
    sub.data = &data;
    write_struct(*n, sub);
    net.reader->requests().push(n);
  }
  {
    concurrent::Node* n = rt.public_pool().get();
    n->fill("through the subsystem");
    n->tag = static_cast<std::uint64_t>(client_reply.id);
    net.writer->input().push(n);
  }
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    concurrent::Node* n = nullptr;
    while (n == nullptr && std::chrono::steady_clock::now() < deadline) {
      n = data.pop();
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_NE(n, nullptr);
    concurrent::NodeLease lease(n);
    EXPECT_EQ(n->view(), "through the subsystem");
  }

  // Close both ends via the CLOSER.
  for (SocketId id : {client_reply.id, server_conn}) {
    concurrent::Node* n = rt.public_pool().get();
    n->tag = static_cast<std::uint64_t>(id);
    net.closer->input().push(n);
  }
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while (net.table->fd(server_conn) != -1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(net.table->fd(server_conn), -1);
  rt.stop();
}

TEST_F(NetActorsTest, ScanRotationPreventsHotSocketStarvation) {
  // Regression for the scan-mode drain rotation (the WRITER's pattern,
  // applied to the READER): a hot low-id socket that eats the entire node
  // pool every round must not starve a later id forever. The pool holds
  // exactly one read burst, the hot socket is kept topped up with more
  // than a burst of buffered data, and the cold socket's delivery depends
  // on the sweep NOT restarting at the lowest id every round.
  concurrent::NodeArena small_arena(kReadBurst, 1024);
  concurrent::Pool small_pool;
  small_pool.adopt(small_arena);

  Socket listener = Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());
  auto accept_one = [&]() -> std::optional<Socket> {
    auto deadline = std::chrono::steady_clock::now() + 2s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto s = listener.accept_nb(); s.has_value()) return s;
      std::this_thread::sleep_for(1ms);
    }
    return std::nullopt;
  };

  Socket hot = Socket::connect_to("127.0.0.1", listener.local_port());
  auto hot_srv = accept_one();
  ASSERT_TRUE(hot_srv.has_value());
  SocketId hot_id = table_->add(std::move(*hot_srv));
  Socket cold = Socket::connect_to("127.0.0.1", listener.local_port());
  auto cold_srv = accept_one();
  ASSERT_TRUE(cold_srv.has_value());
  SocketId cold_id = table_->add(std::move(*cold_srv));
  ASSERT_LT(hot_id, cold_id);  // sweep order without rotation: hot first

  concurrent::Mbox hot_data, cold_data;
  for (auto& [id, mbox] :
       {std::pair<SocketId, concurrent::Mbox*>{hot_id, &hot_data},
        std::pair<SocketId, concurrent::Mbox*>{cold_id, &cold_data}}) {
    concurrent::Node* n = node();
    ReadSubscribe sub;
    sub.socket = id;
    sub.data = mbox;
    sub.pool = &small_pool;
    write_struct(*n, sub);
    reader_.requests().push(n);
  }

  std::vector<std::uint8_t> blob(16 * 1024, 'h');
  (void)hot.write_nb(blob);
  util::Bytes cold_msg = util::to_bytes("the cold socket gets a turn");
  ASSERT_GT(cold.write_nb(cold_msg), 0);

  // Keep the hot socket's kernel buffer above one burst and recycle its
  // nodes immediately, so every round the hot socket *could* consume the
  // whole pool again. Only the rotation lets the cold socket through.
  ASSERT_TRUE(drive({&reader_}, [&] {
    (void)hot.write_nb(std::span<const std::uint8_t>(blob).first(8 * 1024));
    while (concurrent::Node* n = hot_data.pop()) {
      concurrent::NodeLease(n).reset();
    }
    return !cold_data.empty();
  }));
  concurrent::NodeLease lease(cold_data.pop());
  EXPECT_EQ(lease->tag, static_cast<std::uint64_t>(cold_id));
  EXPECT_GT(lease->size, 0u);
}

TEST_F(NetActorsTest, OpenerConnectSucceedsToRealListener) {
  Socket listener = Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());
  concurrent::Mbox reply;
  OpenRequest req;
  req.kind = OpenRequest::kConnect;
  req.port = listener.local_port();
  std::snprintf(req.host, sizeof(req.host), "127.0.0.1");
  req.reply = &reply;
  concurrent::Node* n = node();
  write_struct(*n, req);
  opener_.requests().push(n);
  ASSERT_TRUE(drive({&opener_}, [&] { return !reply.empty(); }));
  concurrent::NodeLease lease(reply.pop());
  OpenReply out;
  ASSERT_TRUE(read_struct(*lease.get(), out));
  EXPECT_GE(out.id, 0);
}

}  // namespace
}  // namespace ea::net
