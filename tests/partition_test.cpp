#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/runtime.hpp"
#include "partition/actors.hpp"
#include "partition/record.hpp"
#include "sgxsim/cost_model.hpp"

namespace ea::partition {
namespace {

using namespace std::chrono_literals;

// --- Record wire format --------------------------------------------------------

TEST(RecordTest, RoundTrip) {
  Record record;
  record.set("user", "alice");
  record.set("lat", "48.85");
  auto parsed = Record::parse(record.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("user"), "alice");
  EXPECT_EQ(*parsed->get("lat"), "48.85");
  EXPECT_EQ(parsed->get("missing"), nullptr);
}

TEST(RecordTest, EscapesMetacharacters) {
  Record record;
  record.set("v", "a=b\nc%d");
  auto parsed = Record::parse(record.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("v"), "a=b\nc%d");
}

TEST(RecordTest, RejectsGarbage) {
  EXPECT_FALSE(Record::parse("no equals sign\n").has_value());
  EXPECT_FALSE(Record::parse("k=%zz\n").has_value());
  EXPECT_FALSE(Record::parse("unterminated=line").has_value());
}

TEST(RecordTest, AuditTracksFieldNames) {
  Record record;
  record.set("user", "alice");
  FieldAudit audit;
  audit.observe(record);
  EXPECT_TRUE(audit.saw("user"));
  EXPECT_FALSE(audit.saw("lat"));
}

// --- the full service ------------------------------------------------------------

class PrivateQueryTest : public ::testing::Test {
 protected:
  PrivateQueryTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
  }
  sgxsim::ScopedCostModel scoped_;

  static std::optional<Record> run_query(core::Runtime& rt,
                                         QueryService& service,
                                         const Record& request) {
    concurrent::Node* node = rt.public_pool().get();
    if (node == nullptr) return std::nullopt;
    std::string wire = request.serialize();
    node->fill(wire);
    service.requests->push(node);
    auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (concurrent::Node* result = service.results->pop()) {
        concurrent::NodeLease lease(result);
        return Record::parse(result->view());
      }
      std::this_thread::sleep_for(1ms);
    }
    return std::nullopt;
  }
};

TEST_F(PrivateQueryTest, EndToEndQueryReturnsMatchingPois) {
  core::Runtime rt;
  QueryService service = install_private_query(rt);
  rt.start();

  crypto::AeadKey reply_key;
  // Location (2.5, 3.5) lies in cell 2,3 (lon->x, lat->y with 1-degree
  // cells).
  Record request =
      make_query_request("r1", "alice", 3.5, 2.5, "cafe", reply_key);
  auto result = run_query(rt, service, request);
  rt.stop();

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result->get("req"), "r1");
  EXPECT_EQ(*result->get("user"), "alice");
  auto plaintext = open_query_result(*result, reply_key);
  ASSERT_TRUE(plaintext.has_value());
  // Every returned POI is a cafe in cell 2,3 (names embed category+cell).
  if (!plaintext->empty()) {
    std::size_t pos = 0;
    while (pos < plaintext->size()) {
      std::size_t eol = plaintext->find('\n', pos);
      std::string name = plaintext->substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      EXPECT_EQ(name.rfind("cafe-2,3-", 0), 0u) << name;
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
  }
}

TEST_F(PrivateQueryTest, ResultsMatchDatabaseGroundTruth) {
  core::Runtime rt;
  QueryServiceConfig config;
  config.grid = 4;
  config.pois_per_cell = 5;
  QueryService service = install_private_query(rt, config);
  rt.start();

  crypto::AeadKey reply_key;
  Record request =
      make_query_request("r2", "bob", 1.5, 1.5, "doctor", reply_key);
  auto result = run_query(rt, service, request);
  ASSERT_TRUE(result.has_value());
  auto plaintext = open_query_result(*result, reply_key);
  ASSERT_TRUE(plaintext.has_value());

  // Count doctors in cell 1,1 straight from the database.
  int expected = 0;
  for (const Poi& poi : service.query->database()) {
    if (poi.cell_x == 1 && poi.cell_y == 1 && poi.category == "doctor") {
      ++expected;
    }
  }
  int got = plaintext->empty()
                ? 0
                : 1 + static_cast<int>(
                          std::count(plaintext->begin(), plaintext->end(), '\n'));
  EXPECT_EQ(got, expected);
  rt.stop();
}

TEST_F(PrivateQueryTest, PartitioningHoldsAcrossManyQueries) {
  core::Runtime rt;
  QueryService service = install_private_query(rt);
  rt.start();

  for (int i = 0; i < 10; ++i) {
    crypto::AeadKey reply_key;
    Record request = make_query_request(
        "q" + std::to_string(i), "user" + std::to_string(i % 3),
        0.5 + i % 4, 0.5 + i % 4, i % 2 == 0 ? "fuel" : "pharmacy",
        reply_key);
    auto result = run_query(rt, service, request);
    ASSERT_TRUE(result.has_value()) << i;
    EXPECT_TRUE(open_query_result(*result, reply_key).has_value()) << i;
  }
  rt.stop();

  // The privacy audit: no partition enclave saw fields outside its slice.
  const FieldAudit& identity = service.identity->audit();
  EXPECT_TRUE(identity.saw("user"));
  EXPECT_FALSE(identity.saw("lat"));
  EXPECT_FALSE(identity.saw("lon"));
  EXPECT_FALSE(identity.saw("cell"));
  EXPECT_FALSE(identity.saw("query"));
  EXPECT_FALSE(identity.saw("reply_key"));

  const FieldAudit& location = service.location->audit();
  EXPECT_TRUE(location.saw("lat"));
  EXPECT_FALSE(location.saw("user"));
  EXPECT_FALSE(location.saw("query"));
  EXPECT_FALSE(location.saw("result"));

  const FieldAudit& query = service.query->audit();
  EXPECT_TRUE(query.saw("query"));
  EXPECT_TRUE(query.saw("cell"));       // coarse cell only...
  EXPECT_FALSE(query.saw("lat"));       // ...never exact coordinates
  EXPECT_FALSE(query.saw("user"));      // pseudonym only
  EXPECT_TRUE(query.saw("pseudonym"));
}

TEST_F(PrivateQueryTest, ResultCiphertextUnreadableWithoutReplyKey) {
  core::Runtime rt;
  QueryService service = install_private_query(rt);
  rt.start();
  crypto::AeadKey reply_key;
  Record request =
      make_query_request("r3", "carol", 2.5, 2.5, "fuel", reply_key);
  auto result = run_query(rt, service, request);
  rt.stop();
  ASSERT_TRUE(result.has_value());

  crypto::AeadKey wrong_key{};
  wrong_key[0] = 0x99;
  EXPECT_FALSE(open_query_result(*result, wrong_key).has_value());
  EXPECT_TRUE(open_query_result(*result, reply_key).has_value());
}

TEST_F(PrivateQueryTest, PartitionChannelsToEnclavesAreEncrypted) {
  core::Runtime rt;
  QueryService service = install_private_query(rt);
  (void)service;
  rt.start();
  // Enclave-to-enclave links encrypt transparently; frontend links stay
  // plain (the frontend is the untrusted splitter — the *split* is the
  // mechanism there, not encryption).
  EXPECT_TRUE(rt.channel("pq.identity-query").encrypted());
  EXPECT_TRUE(rt.channel("pq.location-query").encrypted());
  EXPECT_TRUE(rt.channel("pq.query-identity").encrypted());
  EXPECT_FALSE(rt.channel("pq.frontend-identity").encrypted());
  rt.stop();
}

}  // namespace
}  // namespace ea::partition
