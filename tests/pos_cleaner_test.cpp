// POS cleaner / grace-period fault tests (ctest label: fault).
//
// The reclamation contract (paper §4.1): an outdated entry may only be
// recycled once every registered reader has ticked since the entry was
// unlinked. These tests pin the two failure directions — a parked reader
// must stall reclamation indefinitely (never a use-after-reclaim), and a
// stalled grace check must fail *closed*: nothing freed, nothing lost.

#include <gtest/gtest.h>

#include <string>

#include "pos/cleaner_actor.hpp"
#include "pos/pos.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace ea::pos {
namespace {

class PosCleanerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    fp::reset_counters();
  }
  void TearDown() override { fp::clear_all(); }

  static PosOptions small_options() {
    PosOptions o;
    o.bucket_count = 4;
    o.entry_count = 64;
    o.entry_payload = 64;
    return o;  // anonymous mapping: no backing file needed
  }

  static bool set_str(Pos& pos, const std::string& k, const std::string& v) {
    return pos.set(util::to_bytes(k), util::to_bytes(v));
  }
};

TEST_F(PosCleanerFaultTest, ParkedReaderStallsReclamationUntilItTicks) {
  Pos pos(small_options());
  Pos::Reader reader = pos.register_reader();
  reader.tick();

  ASSERT_TRUE(set_str(pos, "key", "v1"));
  ASSERT_TRUE(set_str(pos, "key", "v2"));  // v1 becomes outdated
  ASSERT_EQ(pos.stats().outdated, 1u);

  // Round 1 unlinks the outdated version into limbo and snapshots the
  // grace counters. From here on the parked reader pins it there.
  EXPECT_EQ(pos.clean_step(), 0u);
  ASSERT_EQ(pos.stats().limbo, 1u);
  const std::uint64_t free_before = pos.stats().free;

  // However many rounds the cleaner runs, a reader that never ticks means
  // the grace period never passes: nothing may be freed while a get()
  // could still be walking the old version.
  for (int round = 0; round < 25; ++round) {
    EXPECT_EQ(pos.clean_step(), 0u);
    EXPECT_EQ(pos.stats().limbo, 1u);
    EXPECT_EQ(pos.stats().free, free_before);
    auto got = pos.get(util::to_bytes("key"));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(util::to_string(*got), "v2");
  }

  // One tick from the reader and the next step reclaims exactly the limbo
  // entry.
  reader.tick();
  EXPECT_EQ(pos.clean_step(), 1u);
  EXPECT_EQ(pos.stats().limbo, 0u);
  EXPECT_EQ(pos.stats().free, free_before + 1);
}

TEST_F(PosCleanerFaultTest, GraceStallFreesNothingAndLosesNothing) {
  Pos pos(small_options());
  Pos::Reader reader = pos.register_reader();
  reader.tick();

  ASSERT_TRUE(set_str(pos, "a", "a1"));
  ASSERT_TRUE(set_str(pos, "a", "a2"));
  ASSERT_TRUE(set_str(pos, "b", "b1"));
  ASSERT_TRUE(set_str(pos, "b", "b2"));
  ASSERT_EQ(pos.stats().outdated, 2u);
  EXPECT_EQ(pos.clean_step(), 0u);  // both into limbo
  ASSERT_EQ(pos.stats().limbo, 2u);

  // The injected stall models a reader whose grace counter never appears
  // to advance. Even though the real reader ticks every round, the
  // cleaner must fail closed: zero frees, limbo intact.
  ASSERT_TRUE(fp::set("pos.clean.grace_stall", "return"));
  for (int round = 0; round < 25; ++round) {
    reader.tick();
    EXPECT_EQ(pos.clean_step(), 0u);
    EXPECT_EQ(pos.stats().limbo, 2u);
  }

  // Fault clears: the pinned entries are reclaimed, none were lost.
  fp::clear("pos.clean.grace_stall");
  reader.tick();
  EXPECT_EQ(pos.clean_step(), 2u);
  EXPECT_EQ(pos.stats().limbo, 0u);
  EXPECT_EQ(util::to_string(*pos.get(util::to_bytes("a"))), "a2");
  EXPECT_EQ(util::to_string(*pos.get(util::to_bytes("b"))), "b2");
}

TEST_F(PosCleanerFaultTest, CleanerActorSkipRoundsThenRecovers) {
  Pos pos(small_options());
  CleanerActor cleaner("cleaner", pos);

  ASSERT_TRUE(set_str(pos, "key", "v1"));
  ASSERT_TRUE(set_str(pos, "key", "v2"));
  ASSERT_EQ(pos.stats().outdated, 1u);

  // A skipped activation (e.g. the worker starving the cleaner) makes no
  // progress at all: the outdated entry is not even unlinked.
  ASSERT_TRUE(fp::set("pos.cleaner.skip", "return"));
  for (int round = 0; round < 10; ++round) {
    EXPECT_FALSE(cleaner.body());
  }
  EXPECT_EQ(cleaner.freed_total(), 0u);
  EXPECT_EQ(pos.stats().outdated, 1u);

  // Once scheduled again it catches up: unlink round, then the free round
  // reports progress (no readers registered, so grace passes trivially).
  fp::clear("pos.cleaner.skip");
  EXPECT_FALSE(cleaner.body());  // phase 1: unlink into limbo
  EXPECT_TRUE(cleaner.body());   // phase 2: grace passed, entry freed
  EXPECT_EQ(cleaner.freed_total(), 1u);
  EXPECT_EQ(pos.stats().outdated, 0u);
  EXPECT_EQ(pos.stats().limbo, 0u);
}

}  // namespace
}  // namespace ea::pos
