// POS cleaner / epoch-reclamation fault tests (ctest label: fault).
//
// The reclamation contract (paper §4.1, DESIGN.md §15): an entry gathered
// into a retirement batch at epoch E may only be recycled once the global
// epoch reaches E+2, and the epoch may only advance past a section that has
// left. These tests pin both failure directions — a pinned section must
// stall reclamation indefinitely (never a use-after-retire), and when the
// protocol is deliberately violated (the forced-advance failpoint), the
// poison + hazard-counter detector must catch the violation loudly.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "pos/cleaner_actor.hpp"
#include "pos/pos.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace ea::pos {
namespace {

class PosCleanerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    fp::reset_counters();
  }
  void TearDown() override { fp::clear_all(); }

  static PosOptions small_options() {
    PosOptions o;
    o.bucket_count = 4;
    o.entry_count = 64;
    o.entry_payload = 64;
    return o;  // anonymous mapping: no backing file needed
  }

  static bool set_str(Pos& pos, const std::string& k, const std::string& v) {
    return pos.set(util::to_bytes(k), util::to_bytes(v));
  }
};

TEST_F(PosCleanerFaultTest, PinnedSectionStallsReclamationUntilItLeaves) {
  Pos pos(small_options());

  ASSERT_TRUE(set_str(pos, "key", "v1"));
  ASSERT_TRUE(set_str(pos, "key", "v2"));  // v1 becomes outdated
  ASSERT_EQ(pos.stats().outdated, 1u);

  // Pin a section, then let the cleaner gather: the outdated version moves
  // into a retirement batch tagged with the epoch our section announced.
  // The first advance still succeeds (our announcement matches the current
  // epoch), but the second — the one that would put the batch past its
  // horizon — is blocked by the pinned announcement.
  pos.epoch_enter();
  EXPECT_EQ(pos.clean_step(), 0u);
  ASSERT_EQ(pos.stats().retired, 1u);
  const std::uint64_t free_before = pos.stats().free;

  // However many rounds the cleaner runs, a section that never leaves
  // means the horizon never passes: nothing may be freed while a get()
  // could still be walking the old version.
  for (int round = 0; round < 25; ++round) {
    EXPECT_EQ(pos.clean_step(), 0u);
    EXPECT_EQ(pos.stats().retired, 1u);
    EXPECT_EQ(pos.stats().free, free_before);
    auto got = pos.get(util::to_bytes("key"));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(util::to_string(*got), "v2");
  }
  // Fail-closed means silent: the detector never fired.
  EXPECT_EQ(pos.stats().reclaim_hazards, 0u);

  // The section leaves; the next step advances past the horizon and
  // reclaims exactly the retired entry.
  pos.epoch_leave();
  EXPECT_EQ(pos.clean_step(), 1u);
  EXPECT_EQ(pos.stats().retired, 0u);
  EXPECT_EQ(pos.stats().free, free_before + 1);
  EXPECT_EQ(pos.stats().reclaim_hazards, 0u);
}

// Context for the walk hook below: park the second visited entry (the
// outdated version sitting below the bucket head) until released. The hook
// must be a plain function pointer, so state travels through the ctx.
struct ParkCtx {
  std::atomic<int> visits{0};
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
};

void park_on_second_entry(void* opaque, std::uint64_t) {
  auto* ctx = static_cast<ParkCtx*>(opaque);
  if (ctx->visits.fetch_add(1, std::memory_order_relaxed) != 1) return;
  ctx->parked.store(true, std::memory_order_release);
  while (!ctx->release.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

// The use-after-retire detector, proven on a real violation: a walk is
// parked on the outdated entry, the forced-advance failpoint pushes the
// epoch past the horizon *despite* the parked section (exactly what a
// protocol bug would do), and the resumed walk must then observe the freed
// entry — poisoned payload, zero key length, Free state — and trip the
// hazard counter instead of returning stale data.
TEST_F(PosCleanerFaultTest, ForcedAdvanceUnderAWalkTripsTheHazardDetector) {
  PosOptions o = small_options();
  o.bucket_count = 1;  // everything chains into one bucket
  Pos pos(o);

  ASSERT_TRUE(set_str(pos, "a", "v1"));
  ASSERT_TRUE(set_str(pos, "a", "v2"));  // chain: v2 (head) -> v1 (outdated)

  ParkCtx ctx;
  pos.set_walk_hook(&park_on_second_entry, &ctx);
  // A miss-walk for a different key visits the whole chain: head first,
  // then the outdated v1, where the hook parks it mid-section.
  std::thread reader([&] {
    auto got = pos.get(util::to_bytes("b"));
    EXPECT_FALSE(got.has_value());
  });
  while (!ctx.parked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Violate the protocol: advance without the quiescence scan. Two forced
  // steps take the batch past its (now meaningless) horizon and free v1
  // under the parked walk's feet.
  ASSERT_TRUE(fp::set("pos.epoch.force_advance", "return"));
  EXPECT_EQ(pos.clean_step(), 0u);  // gather v1, first forced advance
  EXPECT_EQ(pos.clean_step(), 1u);  // second forced advance: v1 freed
  fp::clear("pos.epoch.force_advance");

  ctx.release.store(true, std::memory_order_release);
  reader.join();
  pos.set_walk_hook(nullptr, nullptr);

  // The detector fired at least once (the resumed walk crossed v1, and
  // possibly further free-list entries — every one of them is a hazard);
  // the store itself stays coherent for well-behaved operations.
  EXPECT_GE(pos.stats().reclaim_hazards, 1u);
  auto got = pos.get(util::to_bytes("a"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "v2");
  ASSERT_EQ(pos.integrity_error(), std::nullopt);
}

TEST_F(PosCleanerFaultTest, CleanerActorSkipRoundsThenRecovers) {
  Pos pos(small_options());
  CleanerActor cleaner("cleaner", pos);

  ASSERT_TRUE(set_str(pos, "key", "v1"));
  ASSERT_TRUE(set_str(pos, "key", "v2"));
  ASSERT_EQ(pos.stats().outdated, 1u);

  // A skipped activation (e.g. the worker starving the cleaner) makes no
  // progress at all: the outdated entry is not even gathered, and the
  // round counter records nothing.
  ASSERT_TRUE(fp::set("pos.cleaner.skip", "return"));
  for (int round = 0; round < 10; ++round) {
    EXPECT_FALSE(cleaner.body());
  }
  EXPECT_EQ(cleaner.rounds(), 0u);
  EXPECT_EQ(cleaner.freed_total(), 0u);
  EXPECT_EQ(pos.stats().outdated, 1u);

  // Once scheduled again it catches up: a gather-and-advance round, then
  // the round whose second advance passes the horizon and frees.
  fp::clear("pos.cleaner.skip");
  EXPECT_FALSE(cleaner.body());  // gather into a batch; first advance
  EXPECT_TRUE(cleaner.body());   // past the horizon: entry freed
  EXPECT_EQ(cleaner.rounds(), 2u);
  EXPECT_EQ(cleaner.freed_total(), 1u);
  EXPECT_EQ(pos.stats().outdated, 0u);
  EXPECT_EQ(pos.stats().retired, 0u);
}

}  // namespace
}  // namespace ea::pos
