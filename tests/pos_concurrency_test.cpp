// Concurrency suite for the sharded POS write path (DESIGN.md §11): the
// sharded free lists with work-stealing refill, the per-thread entry
// magazines, and the lock-free bucket push, exercised together under
// ThreadSanitizer (`ctest -L tsan`). The load-bearing invariant is
// conservation: entry slots only ever move between the bucket chains, the
// shard free lists, the cleaner's retirement batches, and the magazines —
// never duplicated, never lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "pos/pos.hpp"
#include "util/bytes.hpp"

namespace ea::pos {
namespace {

using util::Bytes;
using util::to_bytes;

PosOptions sharded_options(int magazines) {
  PosOptions options;
  options.entry_count = 2048;
  options.bucket_count = 64;
  options.entry_payload = 64;
  options.free_shards = 8;
  options.magazines = magazines;
  return options;
}

std::span<const std::uint8_t> key_bytes(std::uint64_t k,
                                        std::uint8_t (&buf)[8]) {
  std::memcpy(buf, &k, sizeof(k));
  return {buf, sizeof(buf)};
}

// Quiescent conservation: every entry slot is accounted for exactly once.
// The stats snapshot is taken under a quiesced retire lock, so the state
// scan partitions the slots exactly — live + outdated (not yet gathered) +
// retired (gathered, waiting out the epoch horizon) + free == entry_count —
// and every Free slot must be reachable, from a shard free list or from a
// magazine.
void expect_conserved(const Pos& store, std::uint32_t entry_count) {
  const PosStats stats = store.stats();
  EXPECT_EQ(stats.live + stats.outdated + stats.retired + stats.free,
            entry_count);
  EXPECT_EQ(stats.free, stats.free_listed + stats.in_magazine);
}

// --- cross-shard stealing ---------------------------------------------------

// One thread's home shard holds only entry_count / free_shards entries;
// allocating the whole store from a single thread therefore forces the
// refill path to steal from every other shard.
TEST(PosSharding, SingleThreadAllocatesAcrossAllShards) {
  for (int magazines : {0, 1}) {
    PosOptions options = sharded_options(magazines);
    options.entry_count = 64;
    Pos store(options);
    ASSERT_EQ(store.free_shard_count(), 8u);
    std::uint8_t buf[8];
    for (std::uint64_t k = 0; k < 64; ++k) {
      EXPECT_TRUE(store.set(key_bytes(k, buf), to_bytes("v")))
          << "magazines=" << magazines << " k=" << k;
    }
    // Entirely allocated: nothing free anywhere, and a further set fails.
    EXPECT_FALSE(store.set(key_bytes(999, buf), to_bytes("v")));
    const PosStats stats = store.stats();
    EXPECT_EQ(stats.live, 64u);
    EXPECT_EQ(stats.free, 0u);
  }
}

// --- mode equivalence -------------------------------------------------------

// The same deterministic op sequence must produce the same visible store
// contents in all three ablation modes (and match a std::map model).
TEST(PosSharding, ModesAreObservationallyEquivalent) {
  struct ModeCfg {
    std::uint32_t free_shards;
    int magazines;
  };
  const ModeCfg cfgs[] = {{1, 0}, {8, 0}, {8, 1}};
  std::map<std::uint64_t, std::string> model;
  std::vector<std::unique_ptr<Pos>> stores;
  for (const ModeCfg& cfg : cfgs) {
    PosOptions options = sharded_options(cfg.magazines);
    options.free_shards = cfg.free_shards;
    stores.push_back(std::make_unique<Pos>(options));
  }

  crypto::FastRng rng(0xfeedface);
  std::uint8_t buf[8];
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng.next_below(64);
    const std::uint64_t op = rng.next_below(10);
    if (op < 6) {
      const std::string v = "v" + std::to_string(i);
      model[k] = v;
      for (auto& s : stores) ASSERT_TRUE(s->set(key_bytes(k, buf), to_bytes(v)));
    } else if (op < 8) {
      model.erase(k);
      for (auto& s : stores) s->erase(key_bytes(k, buf));
    } else {
      for (auto& s : stores) {
        auto got = s->get(key_bytes(k, buf));
        auto want = model.find(k);
        if (want == model.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(util::to_string(*got), want->second);
        }
      }
    }
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    auto want = model.find(k);
    for (auto& s : stores) {
      auto got = s->get(key_bytes(k, buf));
      if (want == model.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(util::to_string(*got), want->second);
      }
    }
  }
}

// --- concurrent stress ------------------------------------------------------

// set/get/erase from several threads racing a cleaner across all shards.
// Each operation announces its own epoch section internally; every few
// iterations a worker also wraps a batch in an explicit Section to
// exercise the nested-entry path. Conservation must hold once quiescent.
void run_stress(int magazines) {
  PosOptions options = sharded_options(magazines);
  Pos store(options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeysPerThread = 24;

  std::atomic<bool> stop_cleaner{false};
  std::thread cleaner([&] {
    while (!stop_cleaner.load(std::memory_order_relaxed)) {
      if (store.clean_step() == 0) std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      crypto::FastRng rng(0x5eed0000u + static_cast<std::uint64_t>(t));
      std::uint8_t buf[8];
      const std::uint64_t base = static_cast<std::uint64_t>(t + 1) << 32;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = base | rng.next_below(kKeysPerThread);
        const std::uint64_t op = rng.next_below(10);
        // Occasionally pin an epoch across the whole operation: the inner
        // section taken by set/get/erase then nests inside this one.
        std::optional<Pos::Section> outer;
        if (rng.next_below(8) == 0) outer.emplace(store);
        if (op < 5) {
          // May fail transiently when the cleaner is behind; conservation
          // below is what matters.
          store.set(key_bytes(k, buf), to_bytes("x" + std::to_string(i)));
        } else if (op < 8) {
          auto got = store.get(key_bytes(k, buf));
          if (got.has_value()) {
            EXPECT_FALSE(got->empty());
          }
        } else {
          store.erase(key_bytes(k, buf));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_cleaner.store(true, std::memory_order_relaxed);
  cleaner.join();

  // Workers have exited (magazines flushed back and epoch slots released by
  // the thread-exit hooks). Retirement batches may still be waiting out the
  // horizon — conservation must account for them as `retired`.
  expect_conserved(store, options.entry_count);
  EXPECT_EQ(store.epoch_slots_active(), 0u);

  // With every section gone the cleaner can now drain completely: gather
  // the remaining outdated entries, advance past the horizon, flush.
  while (store.clean_step() > 0 || store.stats().retired > 0 ||
         store.stats().outdated > 0) {
  }
  const PosStats drained = store.stats();
  EXPECT_EQ(drained.retired, 0u);
  EXPECT_EQ(drained.outdated, 0u);
  EXPECT_EQ(drained.free_listed + drained.in_magazine + drained.live,
            options.entry_count);
  EXPECT_EQ(drained.reclaim_hazards, 0u);
  expect_conserved(store, options.entry_count);
  ASSERT_EQ(store.integrity_error(), std::nullopt);
}

TEST(PosStress, ConcurrentMutationWithCleaner) { run_stress(1); }

TEST(PosStress, ConcurrentMutationWithCleanerNoMagazines) { run_stress(0); }

// Pure allocation race: all threads hammer distinct-key sets until the
// store is exhausted. Every successful set consumes exactly one slot (a
// double-allocation would corrupt a bucket chain, which integrity_error()
// rejects), so live must equal the success count and live + free must equal
// the capacity. Without magazines every slot is used; with magazines a
// thread may run out of attempts while still holding stock, so a small
// bounded remainder can flow back to the free lists at thread exit.
TEST(PosStress, ExhaustionIsExact) {
  for (int magazines : {0, 1}) {
    PosOptions options = sharded_options(magazines);
    options.entry_count = 512;
    Pos store(options);

    constexpr int kThreads = 4;
    std::atomic<std::uint64_t> successes{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::uint8_t buf[8];
        const std::uint64_t base = static_cast<std::uint64_t>(t + 1) << 32;
        std::uint64_t mine = 0;
        for (std::uint64_t i = 0; i < 512; ++i) {
          if (store.set(key_bytes(base | i, buf), to_bytes("y"))) ++mine;
        }
        successes.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& w : workers) w.join();

    const std::uint64_t won = successes.load();
    const PosStats stats = store.stats();
    EXPECT_EQ(stats.live, won) << "magazines=" << magazines;
    EXPECT_EQ(stats.live + stats.free, 512u);
    EXPECT_EQ(stats.free, stats.free_listed + stats.in_magazine);
    if (magazines == 0) {
      EXPECT_EQ(won, 512u);
    } else {
      EXPECT_GE(won, 512u - kThreads * kPosMagazineCapacity);
    }
    ASSERT_EQ(store.integrity_error(), std::nullopt);
  }
}

}  // namespace
}  // namespace ea::pos
