// POS crash-recovery torture harness (ctest label: fault).
//
// Strategy (DESIGN.md §10): a forked child runs a deterministic, journaled
// set/erase/clean/persist workload against a file-backed store. Phase 1
// runs the child to completion and collects, per failpoint site, how often
// it was evaluated. Phase 2 repeatedly re-runs the child with one site
// armed as `abort(k)` — k sampled uniformly from the site's evaluation
// count — so the process dies at a uniformly sampled kill-point inside the
// store's mutation machinery. The parent then remaps the store file,
// checks structural integrity (Pos::integrity_error) and verifies every
// key against the journal: each key must hold its last committed value, or
// the outcome of the single in-flight operation. Both plain and
// encrypted-POS (sealed master key) modes are tortured.
//
// The journal and the mmap'd store survive the abort because both live in
// the kernel (page cache / file), not in the dying process.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/rng.hpp"
#include "pos/encrypted.hpp"
#include "pos/pos.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"

namespace ea::pos {
namespace {

namespace fp = util::failpoint;
using util::to_bytes;

constexpr std::size_t kKeys = 24;
constexpr int kOps = 320;

PosOptions torture_options(const std::string& path) {
  PosOptions o;
  o.path = path;
  o.bucket_count = 8;
  // Small enough that the single-threaded child drains its home shard and
  // crosses into the others, so the striped-refill / steal and magazine
  // machinery all run inside the tortured region.
  o.entry_count = 256;
  o.entry_payload = 128;
  o.free_shards = 4;
  o.magazines = 1;  // pin rather than inherit EA_POS_MAGAZINE
  return o;
}

struct Paths {
  std::string store, journal, report;
};

Paths make_paths(const std::string& tag) {
  const std::string base =
      "/tmp/ea_crash_" + std::to_string(::getpid()) + "_" + tag;
  return {base + ".img", base + ".jnl", base + ".rep"};
}

void unlink_paths(const Paths& p) {
  ::unlink(p.store.c_str());
  ::unlink(p.journal.c_str());
  ::unlink(p.report.c_str());
}

// The enclave identity both parent and children seal/unseal under. Created
// once in the parent *before* any fork so the sealing key material (device
// root key + measurement) is inherited and a child-sealed master unseals in
// the parent.
sgxsim::Enclave& crash_enclave() {
  static sgxsim::Enclave& e =
      sgxsim::EnclaveManager::instance().create("crash-owner");
  return e;
}

const util::Bytes& master_key() {
  static const util::Bytes key(32, 0x5a);
  return key;
}

// --- journal ---------------------------------------------------------------
//
// Append-only text journal, one record per line, written with a single
// O_APPEND write(2) each: "I <op> <key> <value>" before the store call,
// "C ..." after it returned true, "F ..." after it returned false. The
// child only ever aborts *inside* a store call, so the journal always ends
// on complete lines and at most one intent lacks its outcome.
struct Journal {
  int fd = -1;
  explicit Journal(const std::string& path) {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  }
  ~Journal() {
    if (fd >= 0) ::close(fd);
  }
  void record(char kind, const char* op, const std::string& key,
              const std::string& value) {
    char buf[192];
    const int n = std::snprintf(buf, sizeof(buf), "%c %s %s %s\n", kind, op,
                                key.c_str(), value.c_str());
    if (n > 0 && fd >= 0) {
      [[maybe_unused]] ssize_t w = ::write(fd, buf, static_cast<size_t>(n));
    }
  }
};

// --- deterministic child workload ------------------------------------------

// Identical in the counting pass and every kill run, so a site's k-th
// evaluation is the same program point in all of them.
void run_workload(const Paths& paths, bool encrypted) {
  Pos store(torture_options(paths.store));
  std::optional<EncryptedPos> enc;
  if (encrypted) {
    enc.emplace(store, master_key());
    enc->store_sealed_master(crash_enclave(), "__master", master_key());
  }
  Journal jnl(paths.journal);
  crypto::FastRng rng(0xC0FFEE);

  for (int op = 0; op < kOps; ++op) {
    const std::string key = "k" + std::to_string(rng.next_below(kKeys));
    const std::uint64_t dice = rng.next_below(8);
    if (dice < 5) {
      const std::string value = "v" + std::to_string(op);
      jnl.record('I', "set", key, value);
      const bool ok = encrypted ? enc->set(to_bytes(key), to_bytes(value))
                                : store.set(to_bytes(key), to_bytes(value));
      jnl.record(ok ? 'C' : 'F', "set", key, value);
    } else if (dice == 5) {
      jnl.record('I', "erase", key, "-");
      const bool ok =
          encrypted ? enc->erase(to_bytes(key)) : store.erase(to_bytes(key));
      jnl.record(ok ? 'C' : 'F', "erase", key, "-");
    } else if (dice == 6) {
      store.clean_step();
    } else {
      store.persist();
    }
    if (op % 16 == 0) store.clean_step();
  }
  store.persist();
}

// Forks; the child installs `site=spec` (if any), runs the workload, and
// optionally writes the evaluation report. Returns the wait status.
int run_child(const Paths& paths, bool encrypted, const char* site,
              const std::string& spec, bool report) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    fp::clear_all();
    fp::reset_counters();
    if (site != nullptr) fp::set(site, spec.c_str());
    try {
      run_workload(paths, encrypted);
    } catch (...) {
      ::_exit(42);  // distinguishable from both SIGABRT and clean exit
    }
    if (report) fp::write_report(paths.report.c_str());
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// Reads the phase-1 report, keeping POS mutation sites only. Construction
// sites (pos.open / pos.mmap) are fault sites, not kill-points: a store
// that never finished constructing has no crash-consistency contract.
std::map<std::string, std::uint64_t> kill_sites(const std::string& path) {
  std::map<std::string, std::uint64_t> out;
  std::ifstream in(path);
  std::string name;
  std::uint64_t evals = 0, hits = 0;
  while (in >> name >> evals >> hits) {
    if (name.rfind("pos.", 0) == 0 && evals > 0 && name != "pos.open" &&
        name != "pos.mmap") {
      out[name] = evals;
    }
  }
  return out;
}

// --- journal replay + linearisability check --------------------------------

struct Model {
  std::map<std::string, std::string> committed;
  bool has_pending = false;
  bool pending_is_set = false;
  std::string pending_key, pending_value;
};

Model replay_journal(const std::string& path) {
  Model m;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    char kind = 0;
    std::string op, key, value;
    if (!(ls >> kind >> op >> key >> value)) continue;
    if (kind == 'I') {
      m.has_pending = true;
      m.pending_is_set = op == "set";
      m.pending_key = key;
      m.pending_value = value;
    } else {
      if (kind == 'C') {
        if (op == "set") {
          m.committed[key] = value;
        } else {
          m.committed.erase(key);
        }
      }
      m.has_pending = false;
    }
  }
  return m;
}

void verify_recovery(const Paths& p, bool encrypted, const std::string& ctx) {
  const Model m = replay_journal(p.journal);
  Pos store(torture_options(p.store));
  const auto integrity = store.integrity_error();
  ASSERT_FALSE(integrity.has_value()) << ctx << ": " << *integrity;

  std::optional<EncryptedPos> enc;
  if (encrypted) {
    auto loaded =
        EncryptedPos::load_sealed_master(store, crash_enclave(), "__master");
    if (!loaded.has_value()) {
      // The crash hit the sealed-master store itself; nothing can have been
      // committed yet.
      ASSERT_TRUE(m.committed.empty())
          << ctx << ": sealed master lost after commits";
      return;
    }
    enc.emplace(std::move(*loaded));
  }

  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto raw =
        encrypted ? enc->get(to_bytes(key)) : store.get(to_bytes(key));
    std::optional<std::string> got;
    if (raw.has_value()) got = util::to_string(*raw);

    const auto it = m.committed.find(key);
    std::optional<std::string> committed;
    if (it != m.committed.end()) committed = it->second;

    bool ok = got == committed;
    if (!ok && m.has_pending && m.pending_key == key) {
      // The single in-flight op may have taken effect before the crash.
      ok = m.pending_is_set ? (got.has_value() && *got == m.pending_value)
                            : !got.has_value();
    }
    ASSERT_TRUE(ok) << ctx << ": key " << key << " holds "
                    << (got ? *got : "<absent>") << ", journal says "
                    << (committed ? *committed : "<absent>")
                    << (m.has_pending && m.pending_key == key
                            ? " (with in-flight " +
                                  std::string(m.pending_is_set ? "set "
                                                               : "erase ") +
                                  m.pending_value + ")"
                            : "");
  }
}

// --- the torture -----------------------------------------------------------

void torture(bool encrypted) {
  if (encrypted) crash_enclave();  // create pre-fork so the parent can unseal
  const int target =
      static_cast<int>(util::env_int("EA_CRASH_POINTS", 128));
  const std::string mode = encrypted ? "enc" : "plain";

  // Phase 1: count evaluations per site over the full workload.
  Paths base = make_paths(mode + "_count");
  unlink_paths(base);
  const int st = run_child(base, encrypted, nullptr, "", /*report=*/true);
  ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
      << "counting child status " << st;
  const auto histogram = kill_sites(base.report);
  unlink_paths(base);
  ASSERT_FALSE(histogram.empty());
  // The write-path scaling sites (DESIGN.md §11) and the epoch-reclamation
  // sites (§15) must be part of the census, or the torture silently stops
  // covering the sharded machinery / the gather-advance-flush pipeline.
  for (const char* site :
       {"pos.freeshard.steal", "pos.magazine.flush", "pos.bucket.cas",
        "pos.epoch.announce", "pos.epoch.advance", "pos.retire.flush"}) {
    EXPECT_EQ(histogram.count(site), 1u)
        << site << " missing from the " << mode << " torture census";
  }

  std::vector<std::pair<std::string, std::uint64_t>> sites(histogram.begin(),
                                                           histogram.end());
  crypto::FastRng rng(encrypted ? 0xE11C : 0x91A1);
  int executed = 0;
  for (int i = 0; i < target; ++i) {
    const auto& [site, total] = sites[static_cast<std::size_t>(i) %
                                      sites.size()];
    const std::uint64_t k = 1 + rng.next_below(total);
    const std::string ctx =
        mode + " kill-point " + site + "@" + std::to_string(k);
    Paths p = make_paths(mode + "_" + std::to_string(i));
    unlink_paths(p);
    const int status = run_child(p, encrypted, site.c_str(),
                                 "abort(" + std::to_string(k) + ")",
                                 /*report=*/false);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT)
        << ctx << ": child status " << status;
    ++executed;
    verify_recovery(p, encrypted, ctx);
    if (::testing::Test::HasFatalFailure()) return;
    unlink_paths(p);
  }
  EXPECT_EQ(executed, target);
}

TEST(PosCrashTorture, PlainModeSurvivesSampledKillPoints) { torture(false); }

TEST(PosCrashTorture, EncryptedModeSurvivesSampledKillPoints) {
  torture(true);
}

// --- failpoint-driven unit coverage of the construction/persist sites ------

class PosFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(PosFailpointTest, MmapFailureThrows) {
  ASSERT_TRUE(fp::set("pos.mmap", "once"));
  EXPECT_THROW(Pos(PosOptions{}), std::runtime_error);
}

TEST_F(PosFailpointTest, OpenFailureThrows) {
  Paths p = make_paths("openfail");
  unlink_paths(p);
  ASSERT_TRUE(fp::set("pos.open", "once"));
  EXPECT_THROW(Pos(torture_options(p.store)), std::runtime_error);
  unlink_paths(p);
}

TEST_F(PosFailpointTest, MsyncFailureReportedByPersist) {
  Paths p = make_paths("msyncfail");
  unlink_paths(p);
  Pos store(torture_options(p.store));
  ASSERT_TRUE(store.set(to_bytes("k"), to_bytes("v")));
  ASSERT_TRUE(fp::set("pos.msync", "return"));
  EXPECT_FALSE(store.persist());
  fp::clear("pos.msync");
  EXPECT_TRUE(store.persist());
  unlink_paths(p);
}

TEST_F(PosFailpointTest, PersistIsTrivialForAnonymousStores) {
  Pos store{PosOptions{}};
  ASSERT_TRUE(fp::set("pos.msync", "return"));
  EXPECT_TRUE(store.persist());  // no backing file: nothing to msync
}

// --- write-path scaling sites (DESIGN.md §11) -------------------------------
//
// Each of the three sites added with the sharded free lists must fire
// deterministically, so the torture's census-driven sampling (above) can
// never silently lose them.

TEST_F(PosFailpointTest, BucketCasSiteCountsEveryPush) {
  PosOptions o;  // anonymous store
  o.free_shards = 2;
  Pos store(o);
  const std::uint64_t before = fp::evals("pos.bucket.cas");
  ASSERT_TRUE(store.set(to_bytes("k"), to_bytes("v")));
  EXPECT_GT(fp::evals("pos.bucket.cas"), before);
}

TEST_F(PosFailpointTest, StealSiteFiresWhenHomeShardRunsDry) {
  PosOptions o;
  o.free_shards = 8;
  o.entry_count = 64;
  o.magazines = 0;  // single-pop path: pop_or_steal
  Pos store(o);
  const std::uint64_t before = fp::evals("pos.freeshard.steal");
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.set(to_bytes("k" + std::to_string(i)), to_bytes("v")));
  }
  // 64 allocations from one thread against a home shard of 8 entries: the
  // other seven shards must have been raided.
  EXPECT_GT(fp::evals("pos.freeshard.steal"), before);
}

TEST_F(PosFailpointTest, StealSiteFiresOnStripedMagazineRefill) {
  PosOptions o;
  o.free_shards = 8;
  o.entry_count = 64;
  o.magazines = 1;
  Pos store(o);
  const std::uint64_t before = fp::evals("pos.freeshard.steal");
  // The very first refill stripes across the shards (one entry each, home
  // first), so even a single set touches non-home shards.
  ASSERT_TRUE(store.set(to_bytes("k"), to_bytes("v")));
  EXPECT_GT(fp::evals("pos.freeshard.steal"), before);
}

TEST_F(PosFailpointTest, MagazineFlushSiteFiresOnTeardown) {
  const std::uint64_t before = fp::evals("pos.magazine.flush");
  {
    PosOptions o;
    o.free_shards = 2;
    o.magazines = 1;
    Pos store(o);
    // One set refills a full magazine batch and consumes a single entry;
    // the leftovers must flow back through magazine_return at teardown.
    ASSERT_TRUE(store.set(to_bytes("k"), to_bytes("v")));
  }
  EXPECT_GT(fp::evals("pos.magazine.flush"), before);
}

// --- superblock versioning ---------------------------------------------------

// v3 (epoch reclamation) removed the v2 grace-counter region: the layouts
// are incompatible and so are the reclamation protocols. Opening an image
// whose version field says 2 must be refused before any other superblock
// field is believed — a regression here would silently misinterpret the
// old grace region as bucket heads.
TEST(PosVersioning, RejectsGraceCounterEraImages) {
  Paths p = make_paths("v2reject");
  unlink_paths(p);
  {
    Pos store(torture_options(p.store));
    ASSERT_TRUE(store.set(to_bytes("k"), to_bytes("v")));
    ASSERT_TRUE(store.persist());
  }
  // Patch the version field (a uint32 right after the 8-byte magic) back
  // to the grace-counter era.
  {
    const int fd = ::open(p.store.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const std::uint32_t v2 = 2;
    ASSERT_EQ(::pwrite(fd, &v2, sizeof(v2), 8),
              static_cast<ssize_t>(sizeof(v2)));
    ::close(fd);
  }
  try {
    Pos reopened(torture_options(p.store));
    FAIL() << "v2 image accepted by a v3 store";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "POS: bad version");
  }
  unlink_paths(p);
}

// --- integrity checker sanity ----------------------------------------------

TEST(PosIntegrity, CleanStoreHasNoError) {
  Pos store{PosOptions{}};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.set(to_bytes("k" + std::to_string(i % 7)),
                          to_bytes("v" + std::to_string(i))));
  }
  store.erase(to_bytes("k3"));
  store.clean_step();
  EXPECT_FALSE(store.integrity_error().has_value());
}

TEST(PosIntegrity, DetectsScribbledBucketRegion) {
  Paths p = make_paths("scribble");
  unlink_paths(p);
  {
    Pos store(torture_options(p.store));
    ASSERT_TRUE(store.set(to_bytes("key"), to_bytes("value")));
    store.persist();
  }
  // Trash everything past the first 64 superblock bytes (magic, version and
  // geometry survive, so the constructor accepts the file) — the bucket
  // heads, free-shard heads and entries become 0xFF garbage that the
  // structural walk must reject.
  {
    std::fstream f(p.store,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(0, std::ios::end);
    const auto size = f.tellp();
    f.seekp(64);
    std::vector<char> junk(static_cast<std::size_t>(size) - 64,
                           static_cast<char>(0xFF));
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  Pos reopened(torture_options(p.store));
  EXPECT_TRUE(reopened.integrity_error().has_value());
  unlink_paths(p);
}

}  // namespace
}  // namespace ea::pos
