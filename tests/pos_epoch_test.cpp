// Epoch-based reclamation suite for the POS (ctest labels: pos, tsan).
//
// DESIGN.md §15: every bucket-chain traversal runs inside an epoch Section;
// the cleaner gathers superseded versions into epoch-tagged retirement
// batches, advances the global epoch only past quiescent announcements, and
// frees a batch two epochs after its retirement. These tests pin the
// protocol's observable guarantees — epoch monotonicity (including across
// persist + reopen), no free before quiescence, a stuck reader bounding the
// epoch but not the writers, slot recycling at thread exit — and close with
// a differential test: a concurrent store under randomized interleavings
// must agree, per disjoint key range, with a sequential std::map replay.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "crypto/rng.hpp"
#include "pos/pos.hpp"
#include "util/bytes.hpp"

namespace ea::pos {
namespace {

using util::to_bytes;

PosOptions epoch_options() {
  PosOptions o;
  o.bucket_count = 16;
  o.entry_count = 1024;
  o.entry_payload = 64;
  o.free_shards = 4;
  return o;
}

bool set_str(Pos& pos, const std::string& k, const std::string& v) {
  return pos.set(to_bytes(k), to_bytes(v));
}

// --- monotonicity -----------------------------------------------------------

TEST(PosEpoch, EpochNeverDecreasesAndAdvancesWhenQuiescent) {
  Pos store(epoch_options());
  std::uint64_t last = store.reclaim_epoch();
  EXPECT_GE(last, 1u);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(set_str(store, "k" + std::to_string(i % 8), "v" + std::to_string(i)));
    if (i % 4 == 0) store.clean_step();
    const std::uint64_t now = store.reclaim_epoch();
    EXPECT_GE(now, last);
    last = now;
  }
  // With no thread inside a section, every step's advance must succeed.
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t before = store.reclaim_epoch();
    store.clean_step();
    EXPECT_EQ(store.reclaim_epoch(), before + 1);
  }
}

TEST(PosEpoch, EpochSurvivesPersistAndReopen) {
  const std::string path =
      "/tmp/ea_epoch_" + std::to_string(::getpid()) + ".img";
  ::unlink(path.c_str());
  std::uint64_t at_close = 0;
  {
    PosOptions o = epoch_options();
    o.path = path;
    Pos store(o);
    ASSERT_TRUE(set_str(store, "a", "v1"));
    ASSERT_TRUE(set_str(store, "a", "v2"));
    for (int i = 0; i < 6; ++i) store.clean_step();
    ASSERT_TRUE(store.persist());
    at_close = store.reclaim_epoch();
    EXPECT_GT(at_close, 1u);
  }
  {
    PosOptions o;
    o.path = path;
    Pos store(o);
    // The reclamation epoch rides in the superblock: a reopened store never
    // restarts the clock behind where the flushed image left it.
    EXPECT_GE(store.reclaim_epoch(), at_close);
    EXPECT_EQ(store.stats().reclaim_epoch, store.reclaim_epoch());
    EXPECT_EQ(util::to_string(*store.get(to_bytes("a"))), "v2");
  }
  ::unlink(path.c_str());
}

// --- no free before quiescence ----------------------------------------------

TEST(PosEpoch, NothingIsFreedWhileASectionIsPinned) {
  Pos store(epoch_options());
  ASSERT_TRUE(set_str(store, "key", "v1"));
  ASSERT_TRUE(set_str(store, "key", "v2"));

  store.epoch_enter();
  const std::uint64_t free_before = store.stats().free;
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(store.clean_step(), 0u);
    const PosStats s = store.stats();
    EXPECT_EQ(s.free, free_before);
    EXPECT_EQ(s.reclaim_hazards, 0u);
  }
  EXPECT_EQ(store.stats().retired, 1u);
  store.epoch_leave();

  EXPECT_EQ(store.clean_step(), 1u);
  const PosStats s = store.stats();
  EXPECT_EQ(s.retired, 0u);
  EXPECT_EQ(s.free, free_before + 1);
  EXPECT_EQ(s.reclaim_hazards, 0u);
}

// --- stuck reader: stalls reclamation, not writers --------------------------

TEST(PosEpoch, StuckReaderBoundsTheEpochButNotTheWriters) {
  Pos store(epoch_options());
  ASSERT_TRUE(set_str(store, "key", "v1"));
  ASSERT_TRUE(set_str(store, "key", "v2"));

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread parked([&] {
    Pos::Section section(store);
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // The parked section announced epoch e. One advance (e -> e+1) may still
  // pass — the announcement matches the epoch being left — but the advance
  // that would cross the safety horizon is blocked for as long as the
  // section lives.
  const std::uint64_t pinned = store.reclaim_epoch();
  for (int round = 0; round < 20; ++round) {
    store.clean_step();
    EXPECT_LE(store.reclaim_epoch(), pinned + 1);
  }
  EXPECT_GE(store.stats().retired, 1u);

  // Writers are not reader-blocked: sets (including overwrites that retire
  // further versions) keep succeeding against the stalled cleaner.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(set_str(store, "w" + std::to_string(i % 32), "x" + std::to_string(i)))
        << "writer stalled by a parked reader at i=" << i;
  }

  release.store(true, std::memory_order_release);
  parked.join();

  // With the section gone the backlog drains and the epoch moves again.
  const std::uint64_t before = store.reclaim_epoch();
  std::uint64_t freed = 0;
  for (int i = 0; i < 4; ++i) freed += store.clean_step();
  EXPECT_GT(freed, 0u);
  EXPECT_GT(store.reclaim_epoch(), before);
  EXPECT_EQ(store.stats().reclaim_hazards, 0u);
}

// --- thread exit recycles the announcement slot -----------------------------

TEST(PosEpoch, ThreadExitReleasesItsEpochSlot) {
  Pos store(epoch_options());
  const std::size_t claimed_before = store.epoch_slots_claimed();

  std::size_t claimed_inside = 0;
  std::thread t([&] {
    Pos::Section section(store);
    claimed_inside = store.epoch_slots_claimed();
  });
  t.join();
  EXPECT_EQ(claimed_inside, claimed_before + 1);
  EXPECT_EQ(store.epoch_slots_claimed(), claimed_before);
  EXPECT_EQ(store.epoch_slots_active(), 0u);

  // The real point of recycling: far more threads than kMaxEpochSlots may
  // pass through the store over its lifetime, as long as they do not hold
  // sections *concurrently*. The grace-counter design burned a slot per
  // thread forever and would have thrown here.
  for (std::size_t i = 0; i < kMaxEpochSlots + 16; ++i) {
    std::thread worker([&store, i] {
      ASSERT_TRUE(store.set(to_bytes("t" + std::to_string(i)), to_bytes("v")));
    });
    worker.join();
    EXPECT_LE(store.epoch_slots_claimed(), claimed_before + 1);
  }
}

// --- differential: concurrent EBR store vs sequential reference -------------
//
// Worker threads operate on disjoint key ranges and journal every operation
// with its observed outcome. Because keys are disjoint and the store is
// linearisable per key, each thread's journal must replay exactly against a
// sequential std::map — any reclamation bug (freeing a version a reader
// still walks, resurrecting a freed slot into the wrong chain) shows up as
// a journal/model divergence or a hazard. The cleaner runs concurrently
// throughout, and workers open randomized explicit Sections so reclamation
// is constantly straddled by pinned epochs.
TEST(PosEpoch, DifferentialModelUnderRandomizedInterleavings) {
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 1500;
  constexpr int kKeysPerThread = 16;

  struct Op {
    char kind;               // 's' | 'g' | 'e'
    int key;
    std::string value;       // sets only
    bool ok;                 // set/erase return
    std::optional<std::string> got;  // gets only
  };

  Pos store(epoch_options());
  std::vector<std::vector<Op>> journals(kThreads);

  std::atomic<bool> stop_cleaner{false};
  std::thread cleaner([&] {
    std::uint64_t last_epoch = store.reclaim_epoch();
    while (!stop_cleaner.load(std::memory_order_relaxed)) {
      if (store.clean_step() == 0) std::this_thread::yield();
      const std::uint64_t now = store.reclaim_epoch();
      EXPECT_GE(now, last_epoch);  // monotone under full concurrency
      last_epoch = now;
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      crypto::FastRng rng(0xd1ff0000u + static_cast<std::uint64_t>(t));
      std::vector<Op>& journal = journals[static_cast<std::size_t>(t)];
      journal.reserve(kOpsPerThread);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = static_cast<int>(rng.next_below(kKeysPerThread));
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(k);
        std::optional<Pos::Section> outer;
        if (rng.next_below(4) == 0) outer.emplace(store);
        const std::uint64_t dice = rng.next_below(10);
        if (dice < 5) {
          const std::string value =
              std::to_string(t) + ":" + std::to_string(i);
          const bool ok = set_str(store, key, value);
          journal.push_back({'s', k, value, ok, std::nullopt});
        } else if (dice < 8) {
          auto raw = store.get(to_bytes(key));
          std::optional<std::string> got;
          if (raw.has_value()) got = util::to_string(*raw);
          journal.push_back({'g', k, "", true, std::move(got)});
        } else {
          const bool ok = store.erase(to_bytes(key));
          journal.push_back({'e', k, "", ok, std::nullopt});
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_cleaner.store(true, std::memory_order_relaxed);
  cleaner.join();

  // Sequential replay: each journal against its own reference map.
  for (int t = 0; t < kThreads; ++t) {
    std::map<int, std::string> model;
    const auto& journal = journals[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < journal.size(); ++i) {
      const Op& op = journal[i];
      if (op.kind == 's') {
        if (op.ok) model[op.key] = op.value;
        // A failed set (store transiently full) must leave the key as-is;
        // nothing to update.
      } else if (op.kind == 'e') {
        EXPECT_EQ(op.ok, model.count(op.key) != 0)
            << "thread " << t << " op " << i << ": erase outcome diverged";
        model.erase(op.key);
      } else {
        const auto want = model.find(op.key);
        if (want == model.end()) {
          EXPECT_FALSE(op.got.has_value())
              << "thread " << t << " op " << i << ": read resurrected key k"
              << op.key << " -> " << *op.got;
        } else {
          ASSERT_TRUE(op.got.has_value())
              << "thread " << t << " op " << i << ": read lost key k"
              << op.key << " (model " << want->second << ")";
          EXPECT_EQ(*op.got, want->second)
              << "thread " << t << " op " << i << ": stale or torn read";
        }
      }
    }
    // The quiescent store must agree with each model's final state.
    for (const auto& [k, v] : model) {
      const std::string key =
          "t" + std::to_string(t) + "-k" + std::to_string(k);
      auto raw = store.get(to_bytes(key));
      ASSERT_TRUE(raw.has_value()) << "final state lost " << key;
      EXPECT_EQ(util::to_string(*raw), v) << "final state diverged on " << key;
    }
  }

  // No walk ever stepped on a freed entry, and the backlog fully drains.
  EXPECT_EQ(store.stats().reclaim_hazards, 0u);
  while (store.clean_step() > 0 || store.stats().retired > 0 ||
         store.stats().outdated > 0) {
  }
  const PosStats s = store.stats();
  EXPECT_EQ(s.retired, 0u);
  EXPECT_EQ(s.live + s.free, epoch_options().entry_count);
  ASSERT_EQ(store.integrity_error(), std::nullopt);
}

}  // namespace
}  // namespace ea::pos
