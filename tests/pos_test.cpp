#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <thread>

#include "crypto/rng.hpp"
#include "pos/cleaner_actor.hpp"
#include "pos/encrypted.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

namespace ea::pos {
namespace {

using util::Bytes;
using util::to_bytes;

PosOptions small_options() {
  PosOptions options;
  options.entry_count = 64;
  options.entry_payload = 128;
  options.bucket_count = 8;
  return options;
}

TEST(Pos, SetGetRoundTrip) {
  Pos store(small_options());
  EXPECT_TRUE(store.set(to_bytes("alice"), to_bytes("online")));
  auto value = store.get(to_bytes("alice"));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(util::to_string(*value), "online");
}

TEST(Pos, MissingKeyReturnsNullopt) {
  Pos store(small_options());
  EXPECT_FALSE(store.get(to_bytes("ghost")).has_value());
}

TEST(Pos, EmptyKeyRejected) {
  Pos store(small_options());
  EXPECT_FALSE(store.set({}, to_bytes("v")));
}

TEST(Pos, EmptyValueAllowed) {
  Pos store(small_options());
  EXPECT_TRUE(store.set(to_bytes("k"), {}));
  auto value = store.get(to_bytes("k"));
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->empty());
}

TEST(Pos, OversizedPairRejected) {
  Pos store(small_options());
  Bytes big(200, 0x7);
  EXPECT_FALSE(store.set(to_bytes("k"), big));
}

TEST(Pos, UpdateReturnsNewestVersion) {
  Pos store(small_options());
  store.set(to_bytes("k"), to_bytes("v1"));
  store.set(to_bytes("k"), to_bytes("v2"));
  store.set(to_bytes("k"), to_bytes("v3"));
  EXPECT_EQ(util::to_string(*store.get(to_bytes("k"))), "v3");
}

TEST(Pos, UpdatesConsumeEntriesUntilCleaned) {
  PosOptions options = small_options();
  options.entry_count = 4;
  Pos store(options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(store.set(to_bytes("k"), to_bytes("v" + std::to_string(i))));
  }
  // All four entries hold versions of "k"; the store is full.
  EXPECT_FALSE(store.set(to_bytes("k"), to_bytes("v4")));
  PosStats stats = store.stats();
  EXPECT_EQ(stats.live, 1u);
  EXPECT_EQ(stats.outdated, 3u);
}

TEST(Pos, CleanerDefersFreeUntilSectionLeaves) {
  Pos store(small_options());
  store.set(to_bytes("k"), to_bytes("v1"));
  store.set(to_bytes("k"), to_bytes("v2"));

  // A pinned section models an in-flight reader: the superseded version is
  // gathered into a retirement batch, but the batch can never reach its
  // safety horizon (retire epoch + 2) while the section's announcement
  // blocks the second advance.
  store.epoch_enter();
  EXPECT_EQ(store.clean_step(), 0u);  // gather; first advance still allowed
  EXPECT_EQ(store.stats().retired, 1u);
  EXPECT_EQ(store.clean_step(), 0u);  // second advance blocked: no free
  EXPECT_EQ(store.clean_step(), 0u);
  EXPECT_EQ(store.stats().retired, 1u);
  store.epoch_leave();
  EXPECT_EQ(store.clean_step(), 1u);  // horizon passes: batch freed
  EXPECT_EQ(store.stats().retired, 0u);
  EXPECT_EQ(store.stats().outdated, 0u);
  EXPECT_EQ(util::to_string(*store.get(to_bytes("k"))), "v2");
}

TEST(Pos, CleanerWithNoSectionsFreesInTwoSteps) {
  Pos store(small_options());
  store.set(to_bytes("k"), to_bytes("v1"));
  store.set(to_bytes("k"), to_bytes("v2"));
  EXPECT_EQ(store.clean_step(), 0u);  // gather + first advance
  EXPECT_EQ(store.clean_step(), 1u);  // second advance passes the horizon
}

TEST(Pos, PressureCleaningRecyclesWithoutACleanerThread) {
  PosOptions options = small_options();
  options.entry_count = 4;
  options.clean_on_pressure = true;
  Pos store(options);
  // Every overwrite past the 4th must reclaim a superseded version inline;
  // no explicit clean_step() calls and no cleaner thread anywhere.
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(store.set(to_bytes("k"), to_bytes("v" + std::to_string(i))))
        << "overwrite " << i;
  }
  EXPECT_EQ(util::to_string(*store.get(to_bytes("k"))), "v11");
  // A store with nothing outdated is still honestly full: a second key
  // cannot displace the live versions.
  Pos strict(options);
  std::uint8_t pad[1] = {0};
  for (int i = 0; i < 4; ++i) {
    std::uint8_t key[1] = {static_cast<std::uint8_t>(i)};
    EXPECT_TRUE(strict.set(key, pad));
  }
  std::uint8_t fifth[1] = {4};
  EXPECT_FALSE(strict.set(fifth, pad));
}

TEST(Pos, CleanerRecyclesIntoFreeList) {
  PosOptions options = small_options();
  options.entry_count = 4;
  Pos store(options);
  for (int i = 0; i < 4; ++i) {
    store.set(to_bytes("k"), to_bytes("v" + std::to_string(i)));
  }
  EXPECT_FALSE(store.set(to_bytes("k"), to_bytes("overflow")));
  store.clean_step();
  store.clean_step();
  EXPECT_TRUE(store.set(to_bytes("k"), to_bytes("fits-again")));
  EXPECT_EQ(util::to_string(*store.get(to_bytes("k"))), "fits-again");
}

TEST(Pos, EraseHidesKeyAfterCleaning) {
  Pos store(small_options());
  store.set(to_bytes("k"), to_bytes("v"));
  EXPECT_TRUE(store.erase(to_bytes("k")));
  EXPECT_FALSE(store.erase(to_bytes("k")));
  store.clean_step();
  store.clean_step();
  EXPECT_FALSE(store.get(to_bytes("k")).has_value());
}

TEST(Pos, ManyKeysAcrossBuckets) {
  PosOptions options;
  options.entry_count = 512;
  options.entry_payload = 64;
  options.bucket_count = 32;
  Pos store(options);
  for (int i = 0; i < 300; ++i) {
    std::string key = "key-" + std::to_string(i);
    ASSERT_TRUE(store.set(to_bytes(key), to_bytes(std::to_string(i * 3))));
  }
  for (int i = 0; i < 300; ++i) {
    std::string key = "key-" + std::to_string(i);
    auto value = store.get(to_bytes(key));
    ASSERT_TRUE(value.has_value()) << key;
    EXPECT_EQ(util::to_string(*value), std::to_string(i * 3));
  }
}

TEST(Pos, PersistsAcrossRemap) {
  std::string path = "/tmp/ea_pos_test_" + std::to_string(::getpid()) + ".img";
  ::unlink(path.c_str());
  {
    PosOptions options = small_options();
    options.path = path;
    Pos store(options);
    store.set(to_bytes("persistent"), to_bytes("yes"));
    store.persist();
  }
  {
    PosOptions options = small_options();
    options.path = path;
    Pos store(options);
    auto value = store.get(to_bytes("persistent"));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(util::to_string(*value), "yes");
  }
  ::unlink(path.c_str());
}

TEST(Pos, ReopenRejectsCorruptSuperblock) {
  std::string path = "/tmp/ea_pos_bad_" + std::to_string(::getpid()) + ".img";
  ::unlink(path.c_str());
  {
    PosOptions options = small_options();
    options.path = path;
    Pos store(options);
    store.persist();
  }
  // Corrupt the magic.
  FILE* f = ::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  char zero[8] = {};
  ::fwrite(zero, 1, sizeof(zero), f);
  ::fclose(f);
  PosOptions options = small_options();
  options.path = path;
  EXPECT_THROW(Pos store(options), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(Pos, ConcurrentSetGetLinearisable) {
  PosOptions options;
  options.entry_count = 2048;
  options.entry_payload = 64;
  Pos store(options);
  store.set(to_bytes("shared"), to_bytes("0"));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i <= 500; ++i) {
      store.set(to_bytes("shared"), to_bytes(std::to_string(i)));
    }
    stop.store(true);
  });

  // Readers must always observe some previously written value, never
  // garbage, and values must be monotonically non-decreasing per reader
  // (each get starts after the previous returned).
  int last = 0;
  while (!stop.load()) {
    auto value = store.get(to_bytes("shared"));
    ASSERT_TRUE(value.has_value());
    int seen = std::stoi(util::to_string(*value));
    EXPECT_GE(seen, last);
    last = seen;
  }
  writer.join();
  EXPECT_EQ(util::to_string(*store.get(to_bytes("shared"))), "500");
}

// Property test: random operations mirrored against std::map.
class PosModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PosModelCheck, MatchesStdMapModel) {
  PosOptions options;
  options.entry_count = 4096;
  options.entry_payload = 64;
  Pos store(options);
  std::map<std::string, std::string> model;
  crypto::FastRng rng(GetParam());

  for (int op = 0; op < 2000; ++op) {
    std::string key = "k" + std::to_string(rng.next_below(40));
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // set
        std::string value = "v" + std::to_string(rng.next());
        ASSERT_TRUE(store.set(to_bytes(key), to_bytes(value)));
        model[key] = value;
        break;
      }
      case 2: {  // get
        auto got = store.get(to_bytes(key));
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value()) << key;
        } else {
          ASSERT_TRUE(got.has_value()) << key;
          EXPECT_EQ(util::to_string(*got), it->second);
        }
        break;
      }
      case 3: {  // occasionally clean
        store.clean_step();
        break;
      }
    }
  }
  // Final sweep.
  for (const auto& [key, value] : model) {
    auto got = store.get(to_bytes(key));
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(util::to_string(*got), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PosModelCheck,
                         ::testing::Values(1, 2, 3, 42, 1337));

// --- encrypted view -----------------------------------------------------------

TEST(EncryptedPos, RoundTrip) {
  Pos store(small_options());
  Bytes master(32, 0x5a);
  EncryptedPos enc(store, master);
  EXPECT_TRUE(enc.set(to_bytes("alice"), to_bytes("secret-profile")));
  auto value = enc.get(to_bytes("alice"));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(util::to_string(*value), "secret-profile");
}

TEST(EncryptedPos, PlaintextNeverStored) {
  PosOptions options = small_options();
  Pos store(options);
  Bytes master(32, 0x5a);
  EncryptedPos enc(store, master);
  enc.set(to_bytes("alice"), to_bytes("topsecretvalue"));
  // The plaintext key must not be findable in the raw store.
  EXPECT_FALSE(store.get(to_bytes("alice")).has_value());
}

TEST(EncryptedPos, WrongMasterCannotRead) {
  Pos store(small_options());
  EncryptedPos good(store, Bytes(32, 0x01));
  EncryptedPos evil(store, Bytes(32, 0x02));
  good.set(to_bytes("k"), to_bytes("v"));
  EXPECT_FALSE(evil.get(to_bytes("k")).has_value());
  EXPECT_TRUE(good.get(to_bytes("k")).has_value());
}

TEST(EncryptedPos, UpdateAndErase) {
  Pos store(small_options());
  EncryptedPos enc(store, Bytes(32, 0x09));
  enc.set(to_bytes("k"), to_bytes("v1"));
  enc.set(to_bytes("k"), to_bytes("v2"));
  EXPECT_EQ(util::to_string(*enc.get(to_bytes("k"))), "v2");
  EXPECT_TRUE(enc.erase(to_bytes("k")));
  EXPECT_FALSE(enc.get(to_bytes("k")).has_value());
}

TEST(EncryptedPos, SealedMasterKeyLifecycle) {
  sgxsim::ScopedCostModel scoped;
  sgxsim::cost_model().ecall_cycles = 10;
  sgxsim::cost_model().ocall_cycles = 10;
  auto& mgr = sgxsim::EnclaveManager::instance();
  sgxsim::Enclave& owner = mgr.create("pos-owner");
  sgxsim::Enclave& other = mgr.create("pos-other");

  Pos store(small_options());
  Bytes master(32);
  crypto::secure_random(master);
  {
    EncryptedPos enc(store, master);
    enc.set(to_bytes("data"), to_bytes("valuable"));
    EXPECT_TRUE(enc.store_sealed_master(owner, "__master", master));
  }
  // Same enclave identity recovers the key and the data.
  auto recovered = EncryptedPos::load_sealed_master(store, owner, "__master");
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(util::to_string(*recovered->get(to_bytes("data"))), "valuable");
  // A different enclave cannot.
  EXPECT_FALSE(
      EncryptedPos::load_sealed_master(store, other, "__master").has_value());
}

TEST(CleanerActorTest, FreesThroughActorInterface) {
  Pos store(small_options());
  store.set(to_bytes("k"), to_bytes("v1"));
  store.set(to_bytes("k"), to_bytes("v2"));
  CleanerActor cleaner("cleaner", store);
  cleaner.body();  // gather
  cleaner.body();  // free
  EXPECT_EQ(cleaner.freed_total(), 1u);
  EXPECT_EQ(store.stats().outdated, 0u);
}

}  // namespace
}  // namespace ea::pos
