// Property-based and failure-injection tests across modules: randomised
// inputs checked against invariants rather than fixed expectations.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "core/config.hpp"
#include "core/runtime.hpp"
#include "crypto/rng.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "xmpp/stanza.hpp"

namespace ea {
namespace {

// --- channels under every cipher mode and many sizes ------------------------

struct ChannelCase {
  bool cross_enclave;
  core::CipherModel cipher;
  const char* name;
};

class ChannelProperty
    : public ::testing::TestWithParam<std::tuple<ChannelCase, std::size_t>> {
 protected:
  ChannelProperty() {
    sgxsim::cost_model().ecall_cycles = 10;
    sgxsim::cost_model().ocall_cycles = 10;
  }
  sgxsim::ScopedCostModel scoped_;
};

TEST_P(ChannelProperty, RandomPayloadsRoundTripInOrder) {
  const auto& [cc, size] = GetParam();
  core::RuntimeOptions options;
  options.pool_nodes = 64;
  options.node_payload_bytes = size + 64;
  core::Runtime rt(options);

  core::ChannelOptions ch_options;
  ch_options.cipher = cc.cipher;
  core::Channel& ch = rt.channel("prop", ch_options);
  core::ChannelEnd* a;
  core::ChannelEnd* b;
  if (cc.cross_enclave) {
    a = ch.connect(rt.enclave("prop-a").id());
    b = ch.connect(rt.enclave("prop-b").id());
    EXPECT_TRUE(ch.encrypted());
  } else {
    a = ch.connect(sgxsim::kUntrusted);
    b = ch.connect(sgxsim::kUntrusted);
    EXPECT_FALSE(ch.encrypted());
  }

  crypto::FastRng rng(size * 31 + (cc.cross_enclave ? 7 : 0));
  std::deque<std::string> in_flight;
  for (int round = 0; round < 50; ++round) {
    // Random interleaving of sends and receives.
    if (in_flight.size() < 8 && rng.next_below(2) == 0) {
      std::size_t n = size == 0 ? 0 : rng.next_below(size + 1);
      std::string payload = util::random_printable(rng.next(), n);
      if (a->send(payload)) in_flight.push_back(std::move(payload));
    } else if (!in_flight.empty()) {
      auto msg = b->recv();
      ASSERT_TRUE(msg);
      EXPECT_EQ(msg->view(), in_flight.front());
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    auto msg = b->recv();
    ASSERT_TRUE(msg);
    EXPECT_EQ(msg->view(), in_flight.front());
    in_flight.pop_front();
  }
  EXPECT_FALSE(b->recv());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChannelProperty,
    ::testing::Combine(
        ::testing::Values(
            ChannelCase{false, core::CipherModel::kSoftwareAead, "plain"},
            ChannelCase{true, core::CipherModel::kSoftwareAead, "aead"},
            ChannelCase{true, core::CipherModel::kHardwareModel, "hw"}),
        ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{16},
                          std::size_t{255}, std::size_t{1024},
                          std::size_t{16384})),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param).name) + "_" +
             std::to_string(std::get<1>(suite_info.param));
    });

// --- stanza stream robustness ---------------------------------------------------

TEST(StanzaFuzz, RandomMutationsNeverCrash) {
  crypto::FastRng rng(20260705);
  for (int round = 0; round < 500; ++round) {
    std::string wire = xmpp::make_chat_message(
        "al'ice", "bob<x>", util::random_printable(rng.next(), 40));
    // Mutate up to 4 random bytes.
    for (std::uint64_t m = rng.next_below(5); m > 0; --m) {
      wire[rng.next_below(wire.size())] =
          static_cast<char>(rng.next_below(256));
    }
    xmpp::StanzaStream stream;
    stream.feed(wire);
    // Must terminate and never crash; events may or may not appear.
    int guard = 0;
    while (stream.next().has_value() && ++guard < 100) {
    }
  }
}

TEST(StanzaFuzz, RandomFragmentationPreservesEvents) {
  crypto::FastRng rng(42);
  for (int round = 0; round < 100; ++round) {
    std::string wire;
    int stanzas = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < stanzas; ++i) {
      wire += xmpp::make_chat_message(
          "a", "b", util::random_printable(rng.next(), rng.next_below(64)));
    }
    xmpp::StanzaStream stream;
    int events = 0;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t chunk = 1 + rng.next_below(17);
      chunk = std::min(chunk, wire.size() - pos);
      stream.feed(std::string_view(wire).substr(pos, chunk));
      pos += chunk;
      while (stream.next().has_value()) ++events;
    }
    EXPECT_EQ(events, stanzas) << "round " << round;
    EXPECT_FALSE(stream.failed());
  }
}

TEST(StanzaFuzz, EscapedContentAlwaysRoundTrips) {
  crypto::FastRng rng(7);
  for (int round = 0; round < 200; ++round) {
    // Bodies containing XML metacharacters.
    std::string body;
    for (int i = 0; i < 20; ++i) {
      static constexpr char kAlphabet[] = "<>&'\"abc ";
      body += kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
    }
    std::string wire = xmpp::make_chat_message("a", "b", body);
    std::size_t pos = 0;
    auto node = xmpp::parse_element(wire, pos);
    ASSERT_TRUE(node.has_value());
    EXPECT_EQ(node->child("body")->text, body);
  }
}

// --- POS under concurrent writers, readers and cleaner --------------------------

TEST(PosStress, WritersReadersCleanerConcurrently) {
  pos::PosOptions options;
  options.entry_count = 8192;
  options.entry_payload = 64;
  options.bucket_count = 32;
  pos::Pos store(options);

  constexpr int kWriters = 2;
  constexpr int kKeys = 16;
  constexpr int kWritesPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kWritesPerWriter; ++i) {
        std::string key = "k" + std::to_string((w * 7 + i) % kKeys);
        std::string value = std::to_string(w) + ":" + std::to_string(i);
        // The store can transiently fill before the cleaner catches up.
        while (!store.set(util::to_bytes(key), util::to_bytes(value))) {
          std::this_thread::yield();
        }
      }
    });
  }
  // A reader; get() runs its own epoch section, and an explicit Section
  // every few iterations exercises the nested-entry path too.
  threads.emplace_back([&] {
    crypto::FastRng rng(3);
    while (!stop.load()) {
      std::string key = "k" + std::to_string(rng.next_below(kKeys));
      std::optional<util::Bytes> value;
      if (rng.next_below(4) == 0) {
        pos::Pos::Section section(store);
        value = store.get(util::to_bytes(key));
      } else {
        value = store.get(util::to_bytes(key));
      }
      if (value.has_value()) {
        // Values are well-formed "w:i" strings — never torn garbage.
        std::string s = util::to_string(*value);
        EXPECT_NE(s.find(':'), std::string::npos);
      }
    }
  });
  // The cleaner.
  threads.emplace_back([&] {
    while (!stop.load()) {
      store.clean_step();
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // All keys readable; store not leaking entries beyond live + bounded
  // outdated backlog.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(
        store.get(util::to_bytes("k" + std::to_string(k))).has_value());
  }
  store.clean_step();
  store.clean_step();
  store.clean_step();
  pos::PosStats stats = store.stats();
  EXPECT_EQ(stats.live, static_cast<std::uint64_t>(kKeys));
}

// --- runtime edge cases -----------------------------------------------------------

TEST(RuntimeEdge, StopBeforeStartIsNoop) {
  core::Runtime rt;
  rt.stop();
  EXPECT_FALSE(rt.running());
}

TEST(RuntimeEdge, DoubleStartIdempotent) {
  struct Idle : core::Actor {
    using core::Actor::Actor;
    bool body() override { return false; }
  };
  core::Runtime rt;
  rt.add_actor(std::make_unique<Idle>("idle"));
  rt.add_worker("w", {}, {"idle"});
  rt.start();
  rt.start();  // must not spawn duplicate workers or re-run constructors
  EXPECT_TRUE(rt.running());
  rt.stop();
}

TEST(RuntimeEdge, StatsStringMentionsEverything) {
  struct Idle : core::Actor {
    using core::Actor::Actor;
    bool body() override { return false; }
  };
  core::Runtime rt;
  rt.add_actor(std::make_unique<Idle>("watcher"), "stats-enclave");
  rt.add_worker("stats-worker", {}, {"watcher"});
  rt.channel("stats-channel");
  std::string stats = rt.stats_string();
  EXPECT_NE(stats.find("watcher"), std::string::npos);
  EXPECT_NE(stats.find("stats-worker"), std::string::npos);
  EXPECT_NE(stats.find("stats-channel"), std::string::npos);
  EXPECT_NE(stats.find("transitions"), std::string::npos);
}

TEST(RuntimeEdge, ChannelNamesAreIndependent) {
  core::Runtime rt;
  core::Channel& a = rt.channel("one");
  core::Channel& b = rt.channel("two");
  core::Channel& a2 = rt.channel("one");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
}

}  // namespace
}  // namespace ea
