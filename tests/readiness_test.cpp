// Edge-triggered readiness core tests (DESIGN.md §16): the FdWatcherActor
// plus the READER/WRITER epoll paths, driven deterministically by calling
// body() directly (same technique as net_test.cpp). The contracts under
// test:
//   * ET re-arm — only a read that returned EAGAIN clears ready state, so
//     a burst larger than kReadBurst keeps draining without new kernel
//     edges and the next edge after EAGAIN is still delivered;
//   * EPOLLHUP → CLOSER — a hangup on a socket with no read subscriber is
//     routed straight to the CLOSER's input;
//   * spurious wakeups — notes for unknown/closed/duplicate ids are
//     tolerated and their nodes conserved;
//   * no event loss — pool exhaustion defers (coalesced) rather than drops;
//   * multi-worker stress — two epoll net workers under the stealing
//     scheduler (the TSan target).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/pool.hpp"
#include "core/runtime.hpp"
#include "net/actors.hpp"
#include "net/readiness.hpp"
#include "net/socket.hpp"
#include "net/socket_table.hpp"
#include "util/bytes.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

namespace ea::net {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool drive(std::initializer_list<core::Actor*> actors, Pred pred,
           std::chrono::milliseconds limit = 5s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    for (core::Actor* actor : actors) actor->body();
    std::this_thread::sleep_for(100us);
  }
  return pred();
}

// Writes all of `bytes` to a non-blocking socket, yielding on EAGAIN.
bool write_all(Socket& s, std::span<const std::uint8_t> bytes,
               std::chrono::milliseconds limit = 5s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  std::size_t off = 0;
  while (off < bytes.size()) {
    long n = s.write_nb(bytes.subspan(off));
    if (n < 0) return false;
    if (n == 0) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(100us);
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

class ReadinessTest : public ::testing::Test {
 protected:
  ReadinessTest()
      : arena_(256, 1024),
        table_(std::make_shared<SocketTable>()),
        watcher_("watcher", table_, pool_),
        reader_("reader", table_, pool_),
        writer_("writer", table_),
        closer_("closer", table_) {
    pool_.adopt(arena_);
    watcher_.set_closer_input(&closer_.input());
    reader_.enable_readiness(&watcher_.requests(), &pool_);
    writer_.enable_readiness(&watcher_.requests(), &pool_);
  }

  // One accepted connection: the client end stays a raw Socket owned by the
  // test, the server end goes into the shared table.
  struct Conn {
    Socket client;
    SocketId server = -1;
  };
  Conn connect_pair() {
    Conn c;
    Socket listener = Socket::listen_on(0);
    EXPECT_TRUE(listener.valid());
    c.client = Socket::connect_to("127.0.0.1", listener.local_port());
    EXPECT_TRUE(c.client.valid());
    std::optional<Socket> server;
    auto deadline = std::chrono::steady_clock::now() + 2s;
    while (!server.has_value() &&
           std::chrono::steady_clock::now() < deadline) {
      server = listener.accept_nb();
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(server.has_value());
    if (server.has_value()) c.server = table_->add(std::move(*server));
    return c;
  }

  concurrent::Node* node() {
    concurrent::Node* n = pool_.get();
    EXPECT_NE(n, nullptr);
    return n;
  }

  void subscribe_reader(SocketId id, concurrent::Mbox& data) {
    concurrent::Node* n = node();
    ReadSubscribe sub;
    sub.socket = id;
    sub.data = &data;
    write_struct(*n, sub);
    reader_.requests().push(n);
  }

  void send_watch(FdWatcherActor& w, SocketId id, concurrent::Mbox* rd,
                  concurrent::Mbox* wr, std::uint32_t op = WatchRequest::kWatch) {
    concurrent::Node* n = node();
    WatchRequest req;
    req.op = op;
    req.socket = id;
    req.read_ready = rd;
    req.write_ready = wr;
    write_struct(*n, req);
    w.requests().push(n);
  }

  concurrent::NodeArena arena_;
  concurrent::Pool pool_;
  std::shared_ptr<SocketTable> table_;
  FdWatcherActor watcher_;
  ReaderActor reader_;
  WriterActor writer_;
  CloserActor closer_;
};

TEST_F(ReadinessTest, DeliversReadEventsThroughReader) {
  Conn c = connect_pair();
  concurrent::Mbox data;
  subscribe_reader(c.server, data);

  ASSERT_TRUE(
      drive({&reader_, &watcher_}, [&] { return watcher_.watched() == 1; }));

  util::Bytes msg = util::to_bytes("wake on readiness");
  ASSERT_TRUE(write_all(c.client, msg));
  ASSERT_TRUE(drive({&watcher_, &reader_}, [&] { return !data.empty(); }));

  concurrent::NodeLease lease(data.pop());
  EXPECT_EQ(lease->view(), "wake on readiness");
  EXPECT_EQ(lease->tag, static_cast<std::uint64_t>(c.server));
  EXPECT_GE(watcher_.events_delivered(), 1u);
  EXPECT_EQ(watcher_.events_deferred(), 0u);
}

TEST_F(ReadinessTest, EdgeTriggeredRearmAfterPartialReads) {
  Conn c = connect_pair();
  concurrent::Mbox data;
  subscribe_reader(c.server, data);
  ASSERT_TRUE(
      drive({&reader_, &watcher_}, [&] { return watcher_.watched() == 1; }));

  // First burst: larger than one READER round can drain (kReadBurst nodes
  // of 1024 bytes), so the socket must stay in the ready ring across
  // rounds (kMore) without any further kernel edge.
  const std::size_t kTotal = 20'000;
  std::vector<std::uint8_t> blob(kTotal, 0xEA);
  ASSERT_TRUE(write_all(c.client, blob));

  std::size_t received = 0;
  auto consume = [&] {
    while (concurrent::Node* n = data.pop()) {
      concurrent::NodeLease lease(n);
      received += n->size;
    }
    return received >= kTotal;
  };
  ASSERT_TRUE(drive({&watcher_, &reader_}, consume));
  EXPECT_EQ(received, kTotal);

  // The reader has now seen EAGAIN and cleared the socket's ready state —
  // the ET re-arm point. A second burst must produce a fresh edge that
  // flows through the watcher again.
  received = 0;
  util::Bytes again = util::to_bytes("second edge");
  ASSERT_TRUE(write_all(c.client, again));
  ASSERT_TRUE(drive({&watcher_, &reader_},
                    [&] { return consume(), received >= again.size(); }));
  EXPECT_EQ(received, again.size());

  // Quiescent: every node (data, notes, requests) is back in the pool.
  EXPECT_EQ(pool_.size(), pool_.capacity());
}

TEST_F(ReadinessTest, HupWithoutReadSubscriberRoutesToCloser) {
  Conn c = connect_pair();
  // Write-only registration: no read subscriber exists, so a hangup cannot
  // be drained to EOF by the READER — the watcher must route the close
  // straight to the CLOSER.
  send_watch(watcher_, c.server, nullptr, &writer_.ready());
  ASSERT_TRUE(drive({&watcher_}, [&] { return watcher_.watched() == 1; }));

  // SO_LINGER with zero timeout turns close() into a RST, which the server
  // fd reports as EPOLLERR|EPOLLHUP (orderly FIN would only raise RDHUP).
  struct linger lg{1, 0};
  ASSERT_EQ(::setsockopt(c.client.fd(), SOL_SOCKET, SO_LINGER, &lg,
                         sizeof(lg)),
            0);
  c.client.close();

  ASSERT_TRUE(drive({&watcher_, &closer_, &writer_},
                    [&] { return closer_.closes() == 1; }));
  EXPECT_EQ(table_->fd(c.server), -1);
  EXPECT_EQ(watcher_.watched(), 0u);  // hangup retires the registration
  EXPECT_EQ(pool_.size(), pool_.capacity());
}

TEST_F(ReadinessTest, OrderlyCloseDrainsTailThenEofThroughReader) {
  Conn c = connect_pair();
  concurrent::Mbox data;
  subscribe_reader(c.server, data);
  ASSERT_TRUE(
      drive({&reader_, &watcher_}, [&] { return watcher_.watched() == 1; }));

  util::Bytes tail = util::to_bytes("final bytes");
  ASSERT_TRUE(write_all(c.client, tail));
  c.client.close();  // FIN: EPOLLIN|EPOLLRDHUP, data still buffered

  std::string got;
  bool eof = false;
  ASSERT_TRUE(drive({&watcher_, &reader_}, [&] {
    while (concurrent::Node* n = data.pop()) {
      concurrent::NodeLease lease(n);
      if (n->size == 0) {
        eof = true;
      } else {
        got += std::string(n->view());
      }
    }
    return eof;
  }));
  EXPECT_EQ(got, "final bytes");
  EXPECT_EQ(closer_.closes(), 0u);  // EOF went through the READER, not CLOSER
  EXPECT_EQ(pool_.size(), pool_.capacity());
}

TEST_F(ReadinessTest, SpuriousWakeupsAreTolerated) {
  Conn c = connect_pair();
  concurrent::Mbox data;
  subscribe_reader(c.server, data);
  ASSERT_TRUE(
      drive({&reader_, &watcher_}, [&] { return watcher_.watched() == 1; }));

  // Fake notes: an id nobody subscribed, and a duplicate for the real id.
  for (concurrent::Mbox* target : {&reader_.ready(), &writer_.ready()}) {
    concurrent::Node* n = node();
    n->tag = 9999;
    write_struct(*n, ReadinessNote{kReadinessIn | kReadinessOut});
    target->push(n);
  }
  for (int i = 0; i < 2; ++i) {
    concurrent::Node* n = node();
    n->tag = static_cast<std::uint64_t>(c.server);
    write_struct(*n, ReadinessNote{kReadinessIn});
    reader_.ready().push(n);
  }
  // A watch request for an id the table has never seen must be dropped.
  send_watch(watcher_, 4242, &reader_.ready(), nullptr);

  ASSERT_TRUE(drive({&watcher_, &reader_, &writer_}, [&] {
    return reader_.ready().empty() && writer_.ready().empty() &&
           watcher_.requests().empty();
  }));
  EXPECT_EQ(watcher_.watched(), 1u);

  // The plane still works after the noise.
  util::Bytes msg = util::to_bytes("still alive");
  ASSERT_TRUE(write_all(c.client, msg));
  ASSERT_TRUE(drive({&watcher_, &reader_}, [&] { return !data.empty(); }));
  concurrent::NodeLease lease(data.pop());
  EXPECT_EQ(lease->view(), "still alive");
  lease.reset();
  EXPECT_EQ(pool_.size(), pool_.capacity());
}

TEST_F(ReadinessTest, PoolExhaustionDefersEventsWithoutLoss) {
  // The watcher draws notes from a dedicated two-node pool the test can
  // starve without touching the control-plane pool.
  concurrent::NodeArena tiny_arena(2, 256);
  concurrent::Pool tiny_pool;
  tiny_pool.adopt(tiny_arena);
  FdWatcherActor starved("starved", table_, tiny_pool);

  Conn c = connect_pair();
  concurrent::Mbox notes;
  send_watch(starved, c.server, &notes, nullptr);
  ASSERT_TRUE(drive({&starved}, [&] { return starved.watched() == 1; }));

  concurrent::Node* held_a = tiny_pool.get();
  concurrent::Node* held_b = tiny_pool.get();
  ASSERT_NE(held_a, nullptr);
  ASSERT_NE(held_b, nullptr);
  ASSERT_EQ(tiny_pool.get(), nullptr);

  util::Bytes msg = util::to_bytes("deferred edge");
  ASSERT_TRUE(write_all(c.client, msg));
  ASSERT_TRUE(drive({&starved}, [&] { return starved.events_deferred() >= 1; }));
  EXPECT_TRUE(notes.empty());          // not delivered yet...
  EXPECT_TRUE(starved.has_pending_work());  // ...but not dropped either

  tiny_pool.put(held_a);
  tiny_pool.put(held_b);
  ASSERT_TRUE(drive({&starved}, [&] { return !notes.empty(); }));
  concurrent::NodeLease lease(notes.pop());
  EXPECT_EQ(lease->tag, static_cast<std::uint64_t>(c.server));
  ReadinessNote rn{};
  ASSERT_TRUE(read_struct(*lease.get(), rn));
  EXPECT_NE(rn.mask & kReadinessIn, 0u);
}

TEST_F(ReadinessTest, UnwatchStopsDelivery) {
  Conn c = connect_pair();
  concurrent::Mbox notes;
  send_watch(watcher_, c.server, &notes, nullptr);
  ASSERT_TRUE(drive({&watcher_}, [&] { return watcher_.watched() == 1; }));

  send_watch(watcher_, c.server, nullptr, nullptr, WatchRequest::kUnwatch);
  ASSERT_TRUE(drive({&watcher_}, [&] { return watcher_.watched() == 0; }));

  util::Bytes msg = util::to_bytes("into the void");
  ASSERT_TRUE(write_all(c.client, msg));
  for (int i = 0; i < 50; ++i) {
    watcher_.body();
    std::this_thread::sleep_for(100us);
  }
  EXPECT_TRUE(notes.empty());
  EXPECT_EQ(watcher_.events_delivered(), 0u);
  EXPECT_EQ(pool_.size(), pool_.capacity());
}

TEST_F(ReadinessTest, WriterArmsEpolloutAndResumesOnReadiness) {
  Conn c = connect_pair();
  // Clamp the server-side send buffer so the kernel fills up quickly and
  // the writer actually blocks (the client is not reading yet).
  table_->with(c.server, [](Socket& s) {
    int v = 4096;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
  });

  // More data than SNDBUF + the client's receive buffer can hold.
  const std::size_t kNodes = 200;
  const std::size_t kNodeBytes = 1000;
  for (std::size_t i = 0; i < kNodes; ++i) {
    concurrent::Node* n = node();
    std::memset(n->writable().data(), 'w', kNodeBytes);
    n->size = static_cast<std::uint32_t>(kNodeBytes);
    n->tag = static_cast<std::uint64_t>(c.server);
    writer_.input().push(n);
  }

  // Drive the writer alone until it wedges on the full buffer: it must
  // have armed EPOLLOUT with the watcher rather than spinning.
  for (int i = 0; i < 100; ++i) writer_.body();
  ASSERT_TRUE(drive({&watcher_}, [&] { return watcher_.watched() == 1; }));

  // Now the client drains; EPOLLOUT edges must un-park the writer until
  // every byte is delivered and every node returned to the pool.
  std::size_t received = 0;
  util::Bytes buf(8192, 0);
  ASSERT_TRUE(drive(
      {&watcher_, &writer_},
      [&] {
        long n = c.client.read_nb(buf);
        if (n > 0) received += static_cast<std::size_t>(n);
        return received >= kNodes * kNodeBytes &&
               pool_.size() == pool_.capacity();
      },
      10s));
  EXPECT_EQ(received, kNodes * kNodeBytes);
  EXPECT_GE(watcher_.events_delivered(), 1u);
}

TEST(InstallNetworkingEpoll, WatcherInstalledAndEchoWorks) {
  core::RuntimeOptions options;
  options.net = core::NetMode::kEpoll;
  core::Runtime rt(options);
  NetSubsystem net = install_networking(rt, "netw", {0});
  ASSERT_NE(net.watcher, nullptr);

  concurrent::Mbox open_reply, accepted, data;
  rt.start();

  {
    concurrent::Node* n = rt.public_pool().get();
    OpenRequest req;
    req.kind = OpenRequest::kListen;
    req.reply = &open_reply;
    write_struct(*n, req);
    net.opener->requests().push(n);
  }
  OpenReply listen_reply;
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    concurrent::Node* n = nullptr;
    while (n == nullptr && std::chrono::steady_clock::now() < deadline) {
      n = open_reply.pop();
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_NE(n, nullptr);
    concurrent::NodeLease lease(n);
    ASSERT_TRUE(read_struct(*n, listen_reply));
    ASSERT_GE(listen_reply.id, 0);
  }

  {
    concurrent::Node* n = rt.public_pool().get();
    AcceptSubscribe sub;
    sub.listener = listen_reply.id;
    sub.reply = &accepted;
    write_struct(*n, sub);
    net.accepter->requests().push(n);
  }
  Socket client = Socket::connect_to("127.0.0.1", listen_reply.port);
  ASSERT_TRUE(client.valid());
  SocketId server_conn = -1;
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (server_conn < 0 && std::chrono::steady_clock::now() < deadline) {
      if (concurrent::Node* n = accepted.pop()) {
        concurrent::NodeLease lease(n);
        server_conn = static_cast<SocketId>(n->tag);
      }
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_GE(server_conn, 0);
  }

  {
    concurrent::Node* n = rt.public_pool().get();
    ReadSubscribe sub;
    sub.socket = server_conn;
    sub.data = &data;
    write_struct(*n, sub);
    net.reader->requests().push(n);
  }
  util::Bytes msg = util::to_bytes("epoll end to end");
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    std::size_t off = 0;
    while (off < msg.size() &&
           std::chrono::steady_clock::now() < deadline) {
      long n = client.write_nb(std::span<const std::uint8_t>(msg).subspan(off));
      if (n > 0) off += static_cast<std::size_t>(n);
      else std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(off, msg.size());
  }
  {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    concurrent::Node* n = nullptr;
    while (n == nullptr && std::chrono::steady_clock::now() < deadline) {
      n = data.pop();
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_NE(n, nullptr);
    concurrent::NodeLease lease(n);
    EXPECT_EQ(n->view(), "epoll end to end");
  }

  // Echo back through the WRITER (exercises the epoll writer path with a
  // running watcher), then close via the CLOSER.
  {
    concurrent::Node* n = rt.public_pool().get();
    n->fill("echo back");
    n->tag = static_cast<std::uint64_t>(server_conn);
    net.writer->input().push(n);
  }
  {
    util::Bytes buf(64, 0);
    long got = 0;
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (got <= 0 && std::chrono::steady_clock::now() < deadline) {
      got = client.read_nb(buf);
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_GT(got, 0);
    EXPECT_EQ(util::to_string(std::span<const std::uint8_t>(
                  buf.data(), static_cast<std::size_t>(got))),
              "echo back");
  }
  {
    concurrent::Node* n = rt.public_pool().get();
    n->tag = static_cast<std::uint64_t>(server_conn);
    net.closer->input().push(n);
  }
  auto deadline = std::chrono::steady_clock::now() + 5s;
  while (net.table->fd(server_conn) != -1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(net.table->fd(server_conn), -1);
  rt.stop();
}

// The TSan target: two XMPP instances (two epoll net workers, each with
// its own watcher) under the stealing scheduler, hammered by concurrent
// client threads. Any lock-discipline slip between watcher, reader,
// writer, the stealing workers and the sharded tables shows up here.
TEST(ReadinessStress, MultiWorkerWatchersUnderStealingScheduler) {
  core::RuntimeOptions options;
  options.net = core::NetMode::kEpoll;
  options.sched = core::SchedMode::kSteal;
  core::Runtime rt(options);

  xmpp::XmppServiceConfig config;
  config.instances = 2;
  config.trusted = false;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();

  constexpr int kClients = 8;
  constexpr int kEchoes = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      xmpp::Client me;
      const std::string jid = "stress" + std::to_string(i);
      if (!me.connect(service.port, jid)) return;
      int echoed = 0;
      for (int m = 0; m < kEchoes; ++m) {
        if (!me.send_chat(jid, "ping " + std::to_string(m))) break;
        auto reply = me.recv(5000);
        if (!reply.has_value() || reply->kind != "chat") break;
        ++echoed;
      }
      if (echoed == kEchoes) ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  rt.stop();
}

}  // namespace
}  // namespace ea::net
