// Reconnector epoch edge cases (ctest label: net).
//
// The reconnector's epoch counter is a correctness anchor: owners fold it
// into AEAD nonce schedules ((epoch << 32) | counter), so a duplicate bump
// or a bump from a stale socket would reuse nonce space. These tests drive
// the OPENER and RECONNECTOR bodies by hand (no worker threads), making the
// races deterministic:
//
//   * a stale OpenReply — the redial already timed out and a fresh attempt
//     is in flight — must not double-bump the epoch or leak its socket;
//   * quarantine with status/control traffic queued must conserve nodes and
//     resume cleanly: on_restart writes off mid-open attempts and the
//     following redial produces exactly one Up note per epoch;
//   * max_attempts exhaustion publishes a terminal gave_up note and the
//     connection never redials again.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/backoff.hpp"
#include "core/health.hpp"
#include "core/runtime.hpp"
#include "net/actors.hpp"
#include "net/reconnector.hpp"
#include "net/socket.hpp"
#include "net/socket_table.hpp"
#include "sgxsim/cost_model.hpp"

namespace ea {
namespace {

using namespace std::chrono_literals;

class ReconnectorTest : public ::testing::Test {
 protected:
  ReconnectorTest() {
    sgxsim::cost_model().ecall_cycles = 0;
    sgxsim::cost_model().ocall_cycles = 0;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// Hand-driven deployment: networking + a reconnector owned by the test (not
// the runtime), so every body() call below is explicit and single-threaded.
struct Rig {
  core::Runtime rt;
  net::NetSubsystem net;
  net::ReconnectorActor recon;
  concurrent::Mbox data;
  concurrent::Mbox status;
  net::Socket listener;
  std::uint16_t port = 0;

  Rig() : net(net::install_networking(rt, "net.sys", {0})),
          recon("recon.test", net, rt.public_pool()) {
    listener = net::Socket::listen_on(0);
    EXPECT_TRUE(listener.valid());
    port = listener.local_port();
  }

  std::uint64_t add(std::uint32_t max_attempts, std::uint16_t to_port) {
    net::ConnSpec spec;
    std::memcpy(spec.host, "127.0.0.1", sizeof("127.0.0.1"));
    spec.port = to_port;
    spec.data = &data;
    spec.status = &status;
    spec.backoff = core::BackoffPolicy{0, 0, 2, 0};  // retry immediately
    spec.max_attempts = max_attempts;
    return recon.add_connection(spec);
  }

  // Pumps OPENER + RECONNECTOR until a status note arrives (or times out).
  bool pump_until_status(net::ConnStatus& out,
                         std::chrono::milliseconds budget) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      net.opener->body();
      recon.body();
      if (concurrent::Node* n = status.pop()) {
        concurrent::NodeLease lease(n);
        return net::read_struct(*n, out);
      }
      std::this_thread::sleep_for(1ms);
    }
    return false;
  }
};

TEST_F(ReconnectorTest, StaleReplyAfterRedialDoesNotDoubleBumpEpoch) {
  Rig rig;
  rig.add(0, rig.port);
  rig.recon.construct(rig.rt);  // issues open #1 — left unanswered

  // Let attempt #1 age past the open deadline WITHOUT running the OPENER:
  // the reconnector writes it off and immediately redials (attempt #2).
  // Only then does the OPENER run, answering BOTH queued requests — so the
  // reply for the timed-out attempt races the in-flight redial.
  std::this_thread::sleep_for(250ms);
  rig.recon.body();  // timeout -> fail_attempt -> kBackoff (due now)
  EXPECT_EQ(rig.recon.open_failures(), 1u);
  rig.recon.body();  // redial: open #2 queued behind open #1

  net::ConnStatus st{};
  ASSERT_TRUE(rig.pump_until_status(st, 5000ms));
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.epoch, 1u);

  // Drain the second (stale) reply: it must be swallowed — its socket
  // closed, no second Up note, no second epoch bump.
  for (int i = 0; i < 20; ++i) {
    rig.net.opener->body();
    rig.recon.body();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(rig.recon.opens(), 1u);
  EXPECT_EQ(rig.status.pop(), nullptr) << "stale reply published a status";
  // The stale socket was closed, not leaked: only the Up one remains.
  EXPECT_EQ(rig.net.table->size(), 1u);
  EXPECT_NE(rig.net.table->fd(st.socket), -1);

  // A genuine down + redial afterwards bumps the epoch exactly once more.
  concurrent::Node* note = rig.rt.public_pool().get();
  ASSERT_NE(note, nullptr);
  note->tag = 0;
  note->size = 0;
  rig.recon.control().push(note);
  rig.recon.body();  // down -> closer request + backoff
  rig.net.closer->body();
  ASSERT_TRUE(rig.pump_until_status(st, 5000ms));
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.epoch, 2u);
  EXPECT_EQ(rig.recon.reconnects(), 1u);
}

TEST_F(ReconnectorTest, QuarantineConservesNodesAndRestartRedials) {
  Rig rig;
  rig.add(0, rig.port);
  rig.recon.construct(rig.rt);  // open #1 in flight -> state kOpening

  // Queue control/reply traffic the quarantine must release: a down note
  // and the OPENER's reply both sit unprocessed.
  concurrent::Node* note = rig.rt.public_pool().get();
  ASSERT_NE(note, nullptr);
  note->tag = 0;
  note->size = 0;
  rig.recon.control().push(note);
  rig.net.opener->body();  // reply for open #1 lands in replies_

  core::HealthSnapshot before = rig.rt.health();
  rig.recon.on_quarantine();
  core::HealthSnapshot after = rig.rt.health();
  EXPECT_EQ(after.pool.free, before.pool.free + 2)
      << "quarantine leaked queued control/reply nodes";
  EXPECT_EQ(rig.status.pop(), nullptr)
      << "a status note was published during quarantine";

  // Restart: the mid-open attempt (its reply was just drained) is written
  // off, the redial goes out, and exactly one Up note with epoch 1 arrives.
  rig.recon.on_restart();
  EXPECT_GE(rig.recon.open_failures(), 1u);
  net::ConnStatus st{};
  ASSERT_TRUE(rig.pump_until_status(st, 5000ms));
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.gave_up, 0);
  EXPECT_EQ(st.epoch, 1u);
  EXPECT_EQ(rig.recon.opens(), 1u);
}

TEST_F(ReconnectorTest, MaxAttemptsPublishesTerminalGaveUpStatus) {
  Rig rig;
  // Port 1 on loopback: connects are refused immediately.
  rig.add(2, 1);
  rig.recon.construct(rig.rt);

  net::ConnStatus st{};
  ASSERT_TRUE(rig.pump_until_status(st, 5000ms));
  EXPECT_EQ(st.up, 0);
  EXPECT_EQ(st.gave_up, 1);
  EXPECT_EQ(st.epoch, 0u) << "a failed connection must never bump the epoch";
  EXPECT_EQ(rig.recon.gave_up(), 1u);
  EXPECT_EQ(rig.recon.open_failures(), 2u);

  // Terminal: no further redial activity, ever.
  for (int i = 0; i < 20; ++i) {
    rig.net.opener->body();
    rig.recon.body();
  }
  EXPECT_EQ(rig.recon.opens(), 0u);
  EXPECT_EQ(rig.recon.open_failures(), 2u);
  EXPECT_EQ(rig.status.pop(), nullptr);
}

}  // namespace
}  // namespace ea
