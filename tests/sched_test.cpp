// Work-stealing scheduler tests (ctest label: sched; also in the TSan leg).
//
// The three invariants of DESIGN.md §14, each with a regression here:
//
//  1. Enclave affinity — an actor only ever executes on a worker whose
//     affinity mask covers the actor's enclave, and the thread is actually
//     inside that enclave while the body runs. Asserted on EVERY dispatch
//     by the actors themselves.
//  2. FIFO per actor — migration must not reorder one actor's message
//     stream. The sched_state_ exclusivity protocol guarantees at most one
//     worker executes an actor at a time; a sequence-checking consumer
//     (with deliberately non-atomic private state, so TSan would also flag
//     a protocol break) asserts the stream stays strictly in order.
//  3. Zero-copy intra-enclave sends — ChannelEnd::send_node() donates the
//     node pointer on plain/co-located channels; Channel::payload_copies()
//     stays at zero and the receiver gets the sender's very node.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "concurrent/runqueue.hpp"
#include "core/channel.hpp"
#include "core/runtime.hpp"
#include "core/supervisor.hpp"
#include "core/worker.hpp"
#include "net/actors.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"

namespace ea::core {
namespace {

using namespace std::chrono_literals;

bool eventually(std::function<bool()> pred,
                std::chrono::milliseconds limit = 5s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

class SchedTest : public ::testing::Test {
 protected:
  SchedTest() {
    // Cheap transitions: these tests exercise scheduling protocol, not the
    // cost model.
    sgxsim::cost_model().ecall_cycles = 0;
    sgxsim::cost_model().ocall_cycles = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// Asserts the affinity invariant on every single dispatch: the executing
// worker must be allowed to run this placement, and the thread must be
// inside the right enclave while the body runs.
class AffinityProbeActor : public Actor {
 public:
  explicit AffinityProbeActor(std::string name) : Actor(std::move(name)) {}

  bool body() override {
    Worker* w = Worker::current();
    if (w == nullptr || !w->can_run(placement()) ||
        sgxsim::current_enclave() != placement()) {
      violations_->fetch_add(1, std::memory_order_relaxed);
    }
    return true;  // always ready: keeps the queues churning
  }

  std::atomic<std::uint64_t>* violations_ = nullptr;
};

// Same affinity assertion, but never ready: parks immediately, so its home
// worker's queues drain and the worker turns thief.
class IdleProbeActor : public AffinityProbeActor {
 public:
  using AffinityProbeActor::AffinityProbeActor;
  bool body() override {
    AffinityProbeActor::body();
    return false;
  }
};

// Bursty: ready for a stretch, then parks for one beat. Wakeups always
// happen at the HOME worker (poll tick), so every park/wake cycle drags the
// actor home and exposes it to being stolen again — sustained migration
// churn instead of a one-time redistribution.
class BurstyProbeActor : public AffinityProbeActor {
 public:
  using AffinityProbeActor::AffinityProbeActor;
  bool body() override {
    AffinityProbeActor::body();
    return invocations() % 8 != 0;
  }
};

TEST_F(SchedTest, AffinityNeverViolatedUnderSteal) {
  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  std::atomic<std::uint64_t> violations{0};

  // Two enclaves plus untrusted actors; workers with asymmetric masks:
  // w_e1 may enter only e1, w_e2 only e2, w_both both. Untrusted actors may
  // run anywhere. Constant churn ensures plenty of steal attempts whose
  // filter must reject cross-mask candidates.
  std::vector<AffinityProbeActor*> probes;
  auto add = [&](const std::string& name, const std::string& enclave) {
    auto actor = std::make_unique<AffinityProbeActor>(name);
    actor->violations_ = &violations;
    probes.push_back(actor.get());
    rt.add_actor(std::move(actor), enclave);
  };
  for (int i = 0; i < 4; ++i) add("e1a" + std::to_string(i), "e1");
  for (int i = 0; i < 4; ++i) add("e2a" + std::to_string(i), "e2");
  for (int i = 0; i < 4; ++i) add("ua" + std::to_string(i), "");

  rt.add_worker("w_e1", {}, {"e1a0", "e1a1", "ua0"});
  rt.add_worker("w_e2", {}, {"e2a0", "e2a1", "ua1"});
  rt.add_worker("w_both", {}, {"e1a2", "e1a3", "e2a2", "e2a3", "ua2", "ua3"});
  rt.start();

  EXPECT_TRUE(eventually([&] {
    for (const AffinityProbeActor* p : probes) {
      if (p->invocations() < 100) return false;
    }
    return true;
  }));
  rt.stop();
  EXPECT_EQ(violations.load(), 0u);

  // The masks themselves came out of the home placements.
  const auto& workers = rt.workers();
  EXPECT_EQ(workers[0]->affinity().size(), 1u);
  EXPECT_EQ(workers[1]->affinity().size(), 1u);
  EXPECT_EQ(workers[2]->affinity().size(), 2u);
  EXPECT_FALSE(workers[0]->can_run(workers[1]->affinity()[0]));
  EXPECT_TRUE(workers[0]->can_run(sgxsim::kUntrusted));
}

// Producer stamps a strictly increasing sequence into each message; the
// consumer checks it against DELIBERATELY non-atomic private state. If two
// workers ever ran the consumer concurrently (exclusivity broken) TSan
// flags the race; if migration reordered the stream the sequence check
// fails.
class SeqProducerActor : public Actor {
 public:
  SeqProducerActor(std::string name, concurrent::Pool& pool,
                   concurrent::Mbox& out, std::uint64_t total)
      : Actor(std::move(name)), pool_(pool), out_(out), total_(total) {}

  bool body() override {
    if (next_ >= total_) return false;
    concurrent::Node* node = pool_.get();
    if (node == nullptr) return false;
    node->tag = next_++;
    node->size = 0;
    out_.push(node);
    return true;
  }

 private:
  concurrent::Pool& pool_;
  concurrent::Mbox& out_;
  std::uint64_t total_;
  std::uint64_t next_ = 0;
};

class SeqConsumerActor : public Actor {
 public:
  SeqConsumerActor(std::string name, concurrent::Pool& pool,
                   concurrent::Mbox& in)
      : Actor(std::move(name)), pool_(pool), in_(in) {}

  bool body() override {
    bool progress = false;
    while (concurrent::Node* node = in_.pop()) {
      if (node->tag != expected_) ++out_of_order_;  // non-atomic on purpose
      ++expected_;
      pool_.put(node);
      progress = true;
    }
    received_.store(expected_, std::memory_order_relaxed);
    out_of_order_pub_.store(out_of_order_, std::memory_order_relaxed);
    return progress;
  }

  bool has_pending_work() const override { return !in_.empty(); }

  std::uint64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }
  std::uint64_t out_of_order() const {
    return out_of_order_pub_.load(std::memory_order_relaxed);
  }

 private:
  concurrent::Pool& pool_;
  concurrent::Mbox& in_;
  std::uint64_t expected_ = 0;      // private state: exclusivity protects it
  std::uint64_t out_of_order_ = 0;  // likewise
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> out_of_order_pub_{0};
};

TEST_F(SchedTest, FifoPerActorPreservedAcrossMigration) {
  constexpr std::uint64_t kMessages = 20000;
  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  concurrent::Mbox wire;

  auto consumer_owned = std::make_unique<SeqConsumerActor>(
      "consumer", rt.public_pool(), wire);
  SeqConsumerActor* consumer = consumer_owned.get();
  rt.add_actor(std::move(consumer_owned));
  rt.add_actor(std::make_unique<SeqProducerActor>(
      "producer", rt.public_pool(), wire, kMessages));
  // Filler actors keep all four workers' queues busy so the consumer
  // actually migrates (gets stolen) instead of staying put.
  std::atomic<std::uint64_t> sink{0};
  for (int i = 0; i < 8; ++i) {
    auto probe =
        std::make_unique<AffinityProbeActor>("filler" + std::to_string(i));
    probe->violations_ = &sink;
    rt.add_actor(std::move(probe));
  }

  rt.add_worker("w0", {}, {"consumer", "filler0", "filler1"});
  rt.add_worker("w1", {}, {"producer", "filler2", "filler3"});
  rt.add_worker("w2", {}, {"filler4", "filler5"});
  rt.add_worker("w3", {}, {"filler6", "filler7"});
  rt.start();

  EXPECT_TRUE(eventually([&] { return consumer->received() >= kMessages; }));
  rt.stop();
  EXPECT_EQ(consumer->received(), kMessages);
  EXPECT_EQ(consumer->out_of_order(), 0u);
}

// Skewed TSan stress: many always-ready actors homed on one worker, three
// nearly idle workers that can only make progress by stealing. Exercises
// queue push/pop/steal, the parked/queued CAS protocol and the sticky
// enclave switch under real contention.
TEST_F(SchedTest, StealStressSkewedHomeAssignment) {
  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::string> hot_names;
  for (int i = 0; i < 12; ++i) {
    auto probe = std::make_unique<BurstyProbeActor>("hot" + std::to_string(i));
    probe->violations_ = &violations;
    hot_names.push_back(probe->name());
    rt.add_actor(std::move(probe), "e1");
  }
  // One *idle* token home actor per helper worker: it grants the helper an
  // e1 affinity mask (making the hot actors stealable) and then parks, so
  // the helper's own queues run dry and it must steal to stay busy.
  for (int w = 1; w < 4; ++w) {
    auto probe = std::make_unique<IdleProbeActor>("tok" + std::to_string(w));
    probe->violations_ = &violations;
    rt.add_actor(std::move(probe), "e1");
  }

  rt.add_worker("w0", {}, hot_names);
  rt.add_worker("w1", {}, {"tok1"});
  rt.add_worker("w2", {}, {"tok2"});
  rt.add_worker("w3", {}, {"tok3"});
  rt.start();

  EXPECT_TRUE(eventually([&] {
    const auto& workers = rt.workers();
    std::uint64_t steals = 0;
    for (const auto& w : workers) steals += w->steals();
    std::uint64_t total = 0;
    for (const auto& a : rt.actors()) total += a->invocations();
    return steals > 100 && total > 5000;
  }));
  HealthSnapshot snap = rt.health();
  rt.stop();
  EXPECT_EQ(violations.load(), 0u);

  // Observability: the health snapshot carries the steal counters.
  std::uint64_t snap_steals = 0;
  std::uint64_t snap_dispatches = 0;
  for (const WorkerHealth& w : snap.workers) {
    snap_steals += w.steals;
    snap_dispatches += w.dispatches;
  }
  EXPECT_GT(snap_steals, 0u);
  EXPECT_GT(snap_dispatches, snap_steals);
}

TEST_F(SchedTest, StaticModeLeavesQueuesUnusedAndNeverSteals) {
  Runtime rt;  // default options: SchedMode::kStatic
  std::atomic<std::uint64_t> violations{0};
  auto a = std::make_unique<AffinityProbeActor>("a");
  a->violations_ = &violations;
  AffinityProbeActor* probe = a.get();
  rt.add_actor(std::move(a), "e1");
  rt.add_worker("w0", {}, {"a"});
  rt.start();
  EXPECT_TRUE(eventually([&] { return probe->invocations() > 100; }));
  rt.stop();

  EXPECT_EQ(violations.load(), 0u);
  const Worker& w = *rt.workers().front();
  EXPECT_EQ(w.sched_mode(), SchedMode::kStatic);
  EXPECT_EQ(w.steals(), 0u);
  EXPECT_EQ(w.queue_depth(), 0u);
  EXPECT_GE(w.dispatches(), w.rounds());
}

TEST_F(SchedTest, PriorityDefaultsAndSystemActors) {
  Actor* plain = new AffinityProbeActor("p");
  std::unique_ptr<Actor> guard(plain);
  EXPECT_EQ(plain->priority(), ActorPriority::kNormal);
  plain->set_priority(ActorPriority::kHigh);
  EXPECT_EQ(plain->priority(), ActorPriority::kHigh);

  SupervisorActor sup("sup", {});
  EXPECT_EQ(sup.priority(), ActorPriority::kHigh);

  auto table = std::make_shared<net::SocketTable>();
  concurrent::NodeArena arena(4, 256);
  concurrent::Pool pool;
  pool.adopt(arena);
  net::WriterActor writer("writer", table);
  EXPECT_EQ(writer.priority(), ActorPriority::kHigh);
  net::ReaderActor reader("reader", table, pool);
  EXPECT_EQ(reader.priority(), ActorPriority::kHigh);
}

// A failed actor parks without a queue slot; after the supervisor restarts
// it, only the home poll tick can rediscover it — even if it had migrated
// to another worker when it failed.
TEST_F(SchedTest, RestartedActorIsRediscoveredByHomePoll) {
  class FailOnceActor : public Actor {
   public:
    using Actor::Actor;
    bool body() override {
      if (fail_next_.exchange(false, std::memory_order_relaxed)) {
        throw std::runtime_error("scheduled failure");
      }
      return true;
    }
    std::atomic<bool> fail_next_{false};
  };

  RuntimeOptions options;
  options.sched = SchedMode::kSteal;
  Runtime rt(options);
  auto owned = std::make_unique<FailOnceActor>("victim");
  FailOnceActor* victim = owned.get();
  rt.add_actor(std::move(owned));

  SupervisorActor::Options sup_opts;
  sup_opts.sweep_interval_us = 0;
  sup_opts.default_policy.backoff = BackoffPolicy{0, 0, 4, 0};
  rt.add_actor(std::make_unique<SupervisorActor>("sup", sup_opts));
  rt.add_worker("w0", {}, {"victim", "sup"});
  rt.add_worker("w1", {}, {"sup"});  // second worker: steal + shared-home CAS
  rt.start();

  EXPECT_TRUE(eventually([&] { return victim->invocations() > 50; }));
  const std::uint64_t before = victim->invocations();
  victim->fail_next_.store(true, std::memory_order_relaxed);
  // Failure -> park -> supervisor restart -> home poll re-queue: the actor
  // must come back and keep accumulating invocations.
  EXPECT_TRUE(eventually(
      [&] { return victim->invocations() > before + 100 &&
                   victim->restarts() >= 1; }));
  rt.stop();
  EXPECT_EQ(victim->lifecycle(), ActorState::kRunnable);
}

// --- zero-copy sends --------------------------------------------------------

TEST_F(SchedTest, SendNodeIntraEnclaveIsZeroCopy) {
  Runtime rt;
  rt.enclave("e1");
  Channel& ch = rt.channel("c");
  sgxsim::EnclaveId e1 = rt.enclave("e1").id();
  ChannelEnd* a = ch.connect(e1);
  ChannelEnd* b = ch.connect(e1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(ch.encrypted());

  concurrent::Node* raw = rt.public_pool().get();
  ASSERT_NE(raw, nullptr);
  raw->fill("zero copies, pointer moves");
  concurrent::NodeLease lease(raw);
  ASSERT_TRUE(a->send_node(std::move(lease)));

  concurrent::NodeLease got = b->recv();
  ASSERT_TRUE(got);
  // Donation, not duplication: the receiver holds the sender's very node.
  EXPECT_EQ(got.get(), raw);
  EXPECT_EQ(got->view(), "zero copies, pointer moves");
  EXPECT_EQ(ch.payload_copies(), 0u);
  EXPECT_EQ(ch.moved_sends(), 1u);

  // The classic copying send still counts.
  ASSERT_TRUE(a->send("copied"));
  EXPECT_EQ(ch.payload_copies(), 1u);
}

TEST_F(SchedTest, SendNodeCrossEnclaveSealsWithOneCopy) {
  Runtime rt;
  sgxsim::EnclaveId e1 = rt.enclave("e1").id();
  sgxsim::EnclaveId e2 = rt.enclave("e2").id();
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(e1);
  ChannelEnd* b = ch.connect(e2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(ch.encrypted());

  concurrent::Node* raw = rt.public_pool().get();
  ASSERT_NE(raw, nullptr);
  raw->fill("crosses the boundary sealed");
  ASSERT_TRUE(a->send_node(concurrent::NodeLease(raw)));
  // The node went onto the wire sealed in place: one staging copy, no move.
  EXPECT_EQ(ch.payload_copies(), 1u);
  EXPECT_EQ(ch.moved_sends(), 0u);

  concurrent::NodeLease got = b->recv();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->view(), "crosses the boundary sealed");
}

TEST_F(SchedTest, SendNodeClearsReservedBatchTag) {
  Runtime rt;
  Channel& ch = rt.channel("c");
  ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  ChannelEnd* b = ch.connect(sgxsim::kUntrusted);
  concurrent::Node* raw = rt.public_pool().get();
  ASSERT_NE(raw, nullptr);
  raw->fill("not a batch frame");
  raw->tag = kBatchFrameTag;  // a donated node must not impersonate a frame
  ASSERT_TRUE(a->send_node(concurrent::NodeLease(raw)));
  concurrent::NodeLease got = b->recv();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->tag, 0u);
  EXPECT_EQ(got->view(), "not a batch frame");
  EXPECT_EQ(ch.frame_errors(), 0u);
}

// --- run queue unit behaviour -----------------------------------------------

TEST(RunQueueTest, FifoWithLifoFrontAndFilteredSteal) {
  concurrent::RunQueue q;
  q.reserve(4);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.push_back(&a));
  EXPECT_TRUE(q.push_back(&b));
  EXPECT_TRUE(q.push_front(&c));  // fresh wakeup jumps the line
  EXPECT_EQ(q.size(), 3u);

  // Steal takes from the back (the coldest entry)...
  EXPECT_EQ(q.steal_back(nullptr, nullptr), &b);
  // ...and honours the filter: refuse everything -> nullptr, queue intact.
  auto reject_all = [](void*, const void*) { return false; };
  EXPECT_EQ(q.steal_back(reject_all, nullptr), nullptr);
  EXPECT_EQ(q.size(), 2u);

  // Filter that only accepts `c`: steals it from mid-queue, closing the gap.
  auto only_c = [](void* item, const void* want) { return item == want; };
  EXPECT_EQ(q.steal_back(only_c, &c), &c);
  EXPECT_EQ(q.pop_front(), &a);
  EXPECT_EQ(q.pop_front(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(RunQueueTest, CapacityBounds) {
  concurrent::RunQueue q;
  q.reserve(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.push_back(&a));
  EXPECT_TRUE(q.push_front(&b));
  EXPECT_FALSE(q.push_back(&c));  // full: refused, not overwritten
  EXPECT_EQ(q.pop_front(), &b);
  EXPECT_EQ(q.pop_front(), &a);
}

}  // namespace
}  // namespace ea::core
