// Tests for the sgxsim extensions: remote attestation, monotonic-counter
// rollback protection, and HotCalls-style asynchronous calls.
#include <gtest/gtest.h>

#include <thread>

#include "sgxsim/cost_model.hpp"
#include "sgxsim/hotcalls.hpp"
#include "sgxsim/monotonic_counter.hpp"
#include "sgxsim/remote_attestation.hpp"
#include "sgxsim/transition.hpp"
#include "util/bytes.hpp"

namespace ea::sgxsim {
namespace {

class SgxExtTest : public ::testing::Test {
 protected:
  SgxExtTest() {
    cost_model().ecall_cycles = 100;
    cost_model().ocall_cycles = 100;
  }
  ScopedCostModel scoped_;
};

// --- remote attestation ------------------------------------------------------

TEST_F(SgxExtTest, QuoteVerifies) {
  Enclave& e = EnclaveManager::instance().create("ra-good");
  util::Bytes report_data = util::to_bytes("dh-public-value");
  Quote quote = create_quote(e, report_data, /*nonce=*/42);

  AttestationVerifier verifier;
  EXPECT_TRUE(verifier.verify(quote, 42));
  EXPECT_TRUE(verifier.verify_measurement(quote, 42, e.measurement()));
}

TEST_F(SgxExtTest, QuoteReportDataRoundTrips) {
  Enclave& e = EnclaveManager::instance().create("ra-data");
  util::Bytes report_data = util::to_bytes("key-exchange-material");
  Quote quote = create_quote(e, report_data, 1);
  EXPECT_EQ(std::memcmp(quote.report_data.data(), report_data.data(),
                        report_data.size()),
            0);
  // Remaining bytes are zero padded.
  for (std::size_t i = report_data.size(); i < kReportDataSize; ++i) {
    EXPECT_EQ(quote.report_data[i], 0);
  }
}

TEST_F(SgxExtTest, StaleNonceRejected) {
  Enclave& e = EnclaveManager::instance().create("ra-nonce");
  Quote quote = create_quote(e, {}, 7);
  AttestationVerifier verifier;
  EXPECT_FALSE(verifier.verify(quote, 8));  // replayed under a new nonce
}

TEST_F(SgxExtTest, TamperedQuoteRejected) {
  Enclave& e = EnclaveManager::instance().create("ra-tamper");
  Quote quote = create_quote(e, util::to_bytes("data"), 3);
  AttestationVerifier verifier;

  Quote bad = quote;
  bad.measurement[0] ^= 1;  // claim different code identity
  EXPECT_FALSE(verifier.verify(bad, 3));

  bad = quote;
  bad.report_data[0] ^= 1;  // swap in attacker key material
  EXPECT_FALSE(verifier.verify(bad, 3));

  bad = quote;
  bad.signature[0] ^= 1;
  EXPECT_FALSE(verifier.verify(bad, 3));
}

TEST_F(SgxExtTest, WrongMeasurementRejected) {
  Enclave& a = EnclaveManager::instance().create("ra-a");
  Enclave& b = EnclaveManager::instance().create("ra-b");
  Quote quote = create_quote(a, {}, 1);
  AttestationVerifier verifier;
  EXPECT_TRUE(verifier.verify(quote, 1));
  EXPECT_FALSE(verifier.verify_measurement(quote, 1, b.measurement()));
}

// --- monotonic counters / rollback protection ---------------------------------

TEST_F(SgxExtTest, CounterMonotonicPerEnclaveAndSlot) {
  auto& svc = MonotonicCounterService::instance();
  Enclave& a = EnclaveManager::instance().create("mc-a");
  Enclave& b = EnclaveManager::instance().create("mc-b");

  EXPECT_EQ(svc.read(a, 0), 0u);
  EXPECT_EQ(svc.increment(a, 0), 1u);
  EXPECT_EQ(svc.increment(a, 0), 2u);
  EXPECT_EQ(svc.read(a, 0), 2u);
  // Independent per slot and per enclave identity.
  EXPECT_EQ(svc.read(a, 1), 0u);
  EXPECT_EQ(svc.read(b, 0), 0u);
}

TEST_F(SgxExtTest, RollbackProtectedSealingAcceptsFresh) {
  Enclave& e = EnclaveManager::instance().create("mc-fresh");
  util::Bytes state = util::to_bytes("balance=100");
  util::Bytes sealed = seal_with_rollback_protection(e, 5, state);
  auto out = unseal_with_rollback_protection(e, 5, sealed);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, state);
}

TEST_F(SgxExtTest, RollbackDetected) {
  Enclave& e = EnclaveManager::instance().create("mc-rollback");
  util::Bytes v1 = seal_with_rollback_protection(e, 9, util::to_bytes("v1"));
  util::Bytes v2 = seal_with_rollback_protection(e, 9, util::to_bytes("v2"));
  // The latest blob unseals; the rolled-back one is rejected even though
  // its MAC is valid.
  EXPECT_TRUE(unseal_with_rollback_protection(e, 9, v2).has_value());
  EXPECT_FALSE(unseal_with_rollback_protection(e, 9, v1).has_value());
}

TEST_F(SgxExtTest, RollbackProtectionBoundToIdentity) {
  Enclave& a = EnclaveManager::instance().create("mc-id-a");
  Enclave& b = EnclaveManager::instance().create("mc-id-b");
  util::Bytes sealed = seal_with_rollback_protection(a, 0, util::to_bytes("x"));
  EXPECT_FALSE(unseal_with_rollback_protection(b, 0, sealed).has_value());
}

// --- HotCalls -------------------------------------------------------------------

TEST_F(SgxExtTest, HotCallExecutesInsideEnclave) {
  Enclave& e = EnclaveManager::instance().create("hc-basic");
  std::atomic<EnclaveId> observed{kUntrusted};
  HotCallService service(e, [&](std::uint64_t op, void* data) {
    observed.store(current_enclave());
    *static_cast<std::uint64_t*>(data) = op * 2;
  });

  std::uint64_t value = 0;
  service.call(21, &value);
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(observed.load(), e.id());
  EXPECT_EQ(service.calls_served(), 1u);
}

TEST_F(SgxExtTest, HotCallsAvoidPerCallTransitions) {
  Enclave& e = EnclaveManager::instance().create("hc-count");
  HotCallService service(e, [](std::uint64_t, void* data) {
    ++*static_cast<std::uint64_t*>(data);
  });
  // Let the responder enter its enclave, then count.
  std::uint64_t counter = 0;
  service.call(0, &counter);
  reset_transition_stats();
  for (int i = 0; i < 100; ++i) service.call(0, &counter);
  EXPECT_EQ(counter, 101u);
  // No ECalls were needed for the 100 calls (the responder is resident).
  EXPECT_EQ(transition_stats().ecalls, 0u);
}

TEST_F(SgxExtTest, HotCallsSequentialConsistency) {
  Enclave& e = EnclaveManager::instance().create("hc-seq");
  std::vector<std::uint64_t> log;
  HotCallService service(e, [&](std::uint64_t op, void*) {
    log.push_back(op);
  });
  for (std::uint64_t i = 0; i < 50; ++i) service.call(i, nullptr);
  ASSERT_EQ(log.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(log[i], i);
}

}  // namespace
}  // namespace ea::sgxsim

// --- attested X25519 key exchange ------------------------------------------------

#include "sgxsim/attested_exchange.hpp"

namespace ea::sgxsim {
namespace {

class AttestedExchangeTest : public ::testing::Test {
 protected:
  AttestedExchangeTest() {
    cost_model().ecall_cycles = 10;
    cost_model().ocall_cycles = 10;
  }
  ScopedCostModel scoped_;
};

TEST_F(AttestedExchangeTest, BothSidesDeriveSameKey) {
  Enclave& a = EnclaveManager::instance().create("ax-a");
  Enclave& b = EnclaveManager::instance().create("ax-b");
  AttestationVerifier verifier;

  std::uint64_t nonce_a = 111, nonce_b = 222;
  AttestedExchange ex_a(a, nonce_b);  // a's quote answers b's nonce
  AttestedExchange ex_b(b, nonce_a);

  auto key_a = ex_a.complete(ex_b.quote(), nonce_a, verifier);
  auto key_b = ex_b.complete(ex_a.quote(), nonce_b, verifier);
  ASSERT_TRUE(key_a.has_value());
  ASSERT_TRUE(key_b.has_value());
  EXPECT_EQ(*key_a, *key_b);
}

TEST_F(AttestedExchangeTest, MitmSubstitutionDetected) {
  Enclave& a = EnclaveManager::instance().create("ax-m1");
  Enclave& b = EnclaveManager::instance().create("ax-m2");
  AttestationVerifier verifier;
  AttestedExchange ex_a(a, 2);
  AttestedExchange ex_b(b, 1);

  // The attacker swaps in its own public key: the quote MAC no longer
  // matches, so the handshake aborts.
  Quote tampered = ex_b.quote();
  crypto::X25519Key evil = crypto::x25519_base(crypto::x25519_keygen());
  std::memcpy(tampered.report_data.data(), evil.data(), evil.size());
  EXPECT_FALSE(ex_a.complete(tampered, 1, verifier).has_value());
}

TEST_F(AttestedExchangeTest, MeasurementPinningEnforced) {
  Enclave& a = EnclaveManager::instance().create("ax-p1");
  Enclave& b = EnclaveManager::instance().create("ax-p2");
  Enclave& imposter = EnclaveManager::instance().create("ax-imp");
  AttestationVerifier verifier;
  AttestedExchange ex_a(a, 2);
  AttestedExchange ex_imp(imposter, 1);

  // a expects to talk to b's code identity; the imposter's (valid!) quote
  // carries a different measurement and is rejected.
  crypto::Sha256Digest expected = b.measurement();
  EXPECT_FALSE(
      ex_a.complete(ex_imp.quote(), 1, verifier, &expected).has_value());
  // Without pinning the imposter's quote is accepted (it is a genuine
  // enclave, just not the one we wanted).
  EXPECT_TRUE(ex_a.complete(ex_imp.quote(), 1, verifier).has_value());
}

TEST_F(AttestedExchangeTest, ReplayedQuoteRejected) {
  Enclave& a = EnclaveManager::instance().create("ax-r1");
  Enclave& b = EnclaveManager::instance().create("ax-r2");
  AttestationVerifier verifier;
  AttestedExchange ex_a(a, 9);
  AttestedExchange ex_b(b, 8);
  // a's nonce for this session is 8; a quote created for nonce 7 (an old
  // session) must not complete.
  EXPECT_FALSE(ex_a.complete(ex_b.quote(), 7, verifier).has_value());
}

}  // namespace
}  // namespace ea::sgxsim
