#include <gtest/gtest.h>

#include <thread>

#include "sgxsim/attestation.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/sealing.hpp"
#include "sgxsim/sgx_mutex.hpp"
#include "sgxsim/transition.hpp"
#include "sgxsim/trusted_rng.hpp"
#include "util/bytes.hpp"

namespace ea::sgxsim {
namespace {

class SgxSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_transition_stats();
    // Cheap transitions keep tests fast; behavioural assertions only.
    cost_model().ecall_cycles = 100;
    cost_model().ocall_cycles = 100;
  }

  // Restores the cost model when the fixture is destroyed (it was saved
  // before SetUp ran).
  ScopedCostModel scoped_;
};

TEST_F(SgxSimTest, EnclaveCreationAssignsDistinctIdentity) {
  auto& mgr = EnclaveManager::instance();
  Enclave& a = mgr.create("test-a");
  Enclave& b = mgr.create("test-b");
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.measurement(), b.measurement());
  EXPECT_EQ(mgr.find(a.id()), &a);
  EXPECT_EQ(mgr.find(kUntrusted), nullptr);
}

TEST_F(SgxSimTest, SameNameDifferentInstanceDifferentMeasurement) {
  auto& mgr = EnclaveManager::instance();
  Enclave& a = mgr.create("twin");
  Enclave& b = mgr.create("twin");
  EXPECT_NE(a.measurement(), b.measurement());
}

TEST_F(SgxSimTest, EcallSetsAndRestoresContext) {
  Enclave& e = EnclaveManager::instance().create("ctx");
  EXPECT_EQ(current_enclave(), kUntrusted);
  ecall(e, [&] { EXPECT_EQ(current_enclave(), e.id()); });
  EXPECT_EQ(current_enclave(), kUntrusted);
}

TEST_F(SgxSimTest, EcallCountsAndBurnsCycles) {
  Enclave& e = EnclaveManager::instance().create("count");
  reset_transition_stats();
  ecall(e, [] {});
  TransitionStats stats = transition_stats();
  EXPECT_EQ(stats.ecalls, 1u);
  EXPECT_GE(stats.cycles_burned, 200u);  // entry + exit
  EXPECT_EQ(e.entries(), 1u);
}

TEST_F(SgxSimTest, NestedEcallSameEnclaveIsFree) {
  Enclave& e = EnclaveManager::instance().create("nested");
  reset_transition_stats();
  ecall(e, [&] { ecall(e, [] {}); });
  EXPECT_EQ(transition_stats().ecalls, 1u);
}

TEST_F(SgxSimTest, EcallIntoOtherEnclaveMigrates) {
  Enclave& a = EnclaveManager::instance().create("mig-a");
  Enclave& b = EnclaveManager::instance().create("mig-b");
  ecall(a, [&] {
    ecall(b, [&] { EXPECT_EQ(current_enclave(), b.id()); });
    EXPECT_EQ(current_enclave(), a.id());
  });
}

TEST_F(SgxSimTest, OcallLeavesAndReenters) {
  Enclave& e = EnclaveManager::instance().create("ocall");
  reset_transition_stats();
  ecall(e, [&] {
    ocall([&] { EXPECT_EQ(current_enclave(), kUntrusted); });
    EXPECT_EQ(current_enclave(), e.id());
  });
  EXPECT_EQ(transition_stats().ocalls, 1u);
}

TEST_F(SgxSimTest, OcallFromUntrustedIsFree) {
  reset_transition_stats();
  ocall([] {});
  EXPECT_EQ(transition_stats().ocalls, 0u);
  EXPECT_EQ(transition_stats().cycles_burned, 0u);
}

TEST_F(SgxSimTest, MarshalledEcallCopiesBuffers) {
  Enclave& e = EnclaveManager::instance().create("marshal");
  util::Bytes in = util::to_bytes("hello enclave");
  util::Bytes out(32, 0);
  std::size_t produced = ecall_marshalled(
      e, in, out,
      [](void*, std::span<const std::uint8_t> input,
         std::span<std::uint8_t> output) -> std::size_t {
        // Uppercase inside the enclave.
        std::size_t n = std::min(input.size(), output.size());
        for (std::size_t i = 0; i < n; ++i) {
          output[i] = static_cast<std::uint8_t>(std::toupper(input[i]));
        }
        return n;
      },
      nullptr);
  EXPECT_EQ(produced, in.size());
  EXPECT_EQ(util::to_string(std::span<const std::uint8_t>(out.data(), produced)),
            "HELLO ENCLAVE");
}

TEST_F(SgxSimTest, SealingRoundTrip) {
  Enclave& e = EnclaveManager::instance().create("seal");
  util::Bytes secret = util::to_bytes("enclave secret");
  util::Bytes sealed = seal(e, secret);
  EXPECT_NE(sealed, secret);
  auto unsealed = unseal(e, sealed);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, secret);
}

TEST_F(SgxSimTest, SealedBlobBoundToEnclaveIdentity) {
  Enclave& a = EnclaveManager::instance().create("seal-a");
  Enclave& b = EnclaveManager::instance().create("seal-b");
  util::Bytes sealed = seal(a, util::to_bytes("secret"));
  EXPECT_FALSE(unseal(b, sealed).has_value());
  EXPECT_TRUE(unseal(a, sealed).has_value());
}

TEST_F(SgxSimTest, SealedBlobTamperRejected) {
  Enclave& e = EnclaveManager::instance().create("seal-t");
  util::Bytes sealed = seal(e, util::to_bytes("secret"));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(unseal(e, sealed).has_value());
}

TEST_F(SgxSimTest, ReportVerification) {
  Enclave& a = EnclaveManager::instance().create("att-a");
  Enclave& b = EnclaveManager::instance().create("att-b");
  Report report = create_report(a, b);
  EXPECT_TRUE(verify_report(b, report));
  EXPECT_FALSE(verify_report(a, report));  // misaddressed
}

TEST_F(SgxSimTest, ForgedReportRejected) {
  Enclave& a = EnclaveManager::instance().create("att-f1");
  Enclave& b = EnclaveManager::instance().create("att-f2");
  Report report = create_report(a, b);
  report.source_measurement[0] ^= 1;  // claim a different identity
  EXPECT_FALSE(verify_report(b, report));
}

TEST_F(SgxSimTest, SessionKeySymmetricAndPairUnique) {
  Enclave& a = EnclaveManager::instance().create("sess-a");
  Enclave& b = EnclaveManager::instance().create("sess-b");
  Enclave& c = EnclaveManager::instance().create("sess-c");
  auto ab = establish_session_key(a, b);
  auto ba = establish_session_key(b, a);
  auto ac = establish_session_key(a, c);
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  ASSERT_TRUE(ac.has_value());
  EXPECT_EQ(*ab, *ba);
  EXPECT_NE(*ab, *ac);
}

TEST_F(SgxSimTest, TrustedRngChargesPerByte) {
  cost_model().rng_cycles_per_byte = 1000;
  std::uint8_t buf[1024];
  std::uint64_t start = util::rdtsc();
  trusted_read_rand(buf);
  std::uint64_t elapsed = util::rdtsc() - start;
  EXPECT_GE(elapsed, 1000u * 1024u);
}

TEST_F(SgxSimTest, TrustedRngProducesEntropy) {
  std::uint8_t a[32] = {};
  std::uint8_t b[32] = {};
  cost_model().rng_cycles_per_byte = 0;
  trusted_read_rand(a);
  trusted_read_rand(b);
  EXPECT_NE(std::memcmp(a, b, sizeof(a)), 0);
}

TEST_F(SgxSimTest, EpcOverflowPagesAccounted) {
  auto& mgr = EnclaveManager::instance();
  std::uint64_t before = mgr.overflow_pages();
  Enclave& big = mgr.create("epc-big");
  big.add_committed(cost_model().epc_usable_bytes);  // guarantees overflow
  EXPECT_GT(mgr.overflow_pages(), before);
  // Transitions now record paging events.
  reset_transition_stats();
  ecall(big, [] {});
  EXPECT_GT(transition_stats().paging_events, 0u);
  // Shrink back so later tests are unaffected (commitment is additive-only
  // in the API; compensate with the cost model instead).
  cost_model().epc_usable_bytes += big.committed_bytes();
}

TEST_F(SgxSimTest, SgxMutexMutualExclusion) {
  SgxMutex mutex;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        mutex.lock();
        ++counter;
        mutex.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(SgxSimTest, SgxMutexExitsEnclaveUnderContention) {
  cost_model().mutex_spin_iterations = 10;  // give up almost immediately
  SgxMutex mutex;
  Enclave& e = EnclaveManager::instance().create("mutex-enclave");

  std::atomic<bool> hold{true};
  mutex.lock();
  std::thread contender([&] {
    ecall(e, [&] {
      mutex.lock();
      mutex.unlock();
    });
    hold.store(false);
  });
  // Give the contender time to exhaust its spin budget and sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  reset_transition_stats();
  mutex.unlock();
  contender.join();
  EXPECT_FALSE(hold.load());
  EXPECT_GE(mutex.enclave_exits(), 1u);
}

TEST(CostModelTest, ScopedRestore) {
  std::uint64_t orig = cost_model().ecall_cycles;
  {
    ScopedCostModel scoped;
    cost_model().ecall_cycles = 1;
    EXPECT_EQ(cost_model().ecall_cycles, 1u);
  }
  EXPECT_EQ(cost_model().ecall_cycles, orig);
}

}  // namespace
}  // namespace ea::sgxsim
