#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/runtime.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"
#include "smc/party_actor.hpp"
#include "smc/sdk_ring.hpp"
#include "smc/secure_sum.hpp"

namespace ea::smc {
namespace {

using namespace std::chrono_literals;

class SmcTest : public ::testing::Test {
 protected:
  SmcTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

TEST_F(SmcTest, SerializeRoundTrip) {
  Vec v = {0, 1, 0xffffffffu, 12345};
  Vec w = deserialize(serialize(v));
  EXPECT_EQ(v, w);
}

TEST_F(SmcTest, AddSubInverse) {
  Vec a = {1, 2, 0xffffffffu};
  Vec b = {5, 7, 11};
  Vec c = a;
  add_in_place(c, b);
  sub_in_place(c, b);
  EXPECT_EQ(c, a);
}

TEST_F(SmcTest, UpdateSecretDeterministicAndChanging) {
  Vec a = {1, 2, 3};
  Vec b = a;
  update_secret(a);
  update_secret(b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, (Vec{1, 2, 3}));
}

TEST_F(SmcTest, SdkRingComputesCorrectSum) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 16;
  SdkSecureSum smc(config);
  Vec expected = smc.expected_sum();
  Vec sum = smc.run_once();
  EXPECT_EQ(sum, expected);
}

TEST_F(SmcTest, SdkRingManyPartiesLargeVector) {
  SmcConfig config;
  config.parties = 8;
  config.dim = 1000;
  SdkSecureSum smc(config);
  EXPECT_EQ(smc.run_once(), smc.expected_sum());
}

TEST_F(SmcTest, SdkRingRepeatedInvocationsStable) {
  SmcConfig config;
  config.parties = 4;
  config.dim = 8;
  SdkSecureSum smc(config);
  Vec expected = smc.expected_sum();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(smc.run_once(), expected);
  }
}

TEST_F(SmcTest, SdkRingDynamicUpdatesSecrets) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 4;
  config.dynamic = true;
  SdkSecureSum smc(config);
  Vec first_expected = smc.expected_sum();
  Vec first = smc.run_once();
  EXPECT_EQ(first, first_expected);
  // After the dynamic update, the next sum differs.
  Vec second_expected = smc.expected_sum();
  EXPECT_NE(second_expected, first_expected);
  EXPECT_EQ(smc.run_once(), second_expected);
}

TEST_F(SmcTest, SdkRingChargesTransitionsPerHop) {
  SmcConfig config;
  config.parties = 5;
  config.dim = 1;
  SdkSecureSum smc(config);
  sgxsim::reset_transition_stats();
  smc.run_once();
  // K+1 ecalls per invocation (one per hop plus the final unmask).
  EXPECT_EQ(sgxsim::transition_stats().ecalls, 6u);
}

// The EActors deployment, driven through a real runtime.
TEST_F(SmcTest, EActorsRingComputesCorrectSum) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 16;

  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 4096;
  core::Runtime rt(options);
  SmcDeployment deployment = install_secure_sum(rt, config);
  rt.start();

  // Ground truth: the same deterministic secrets the actors initialise.
  SdkSecureSum reference(config);
  Vec expected = reference.expected_sum();

  // Issue 5 invocations.
  for (int i = 0; i < 5; ++i) {
    concurrent::Node* req = rt.public_pool().get();
    ASSERT_NE(req, nullptr);
    deployment.requests->push(req);
  }
  std::vector<Vec> results;
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (results.size() < 5 && std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* node = deployment.results->pop()) {
      concurrent::NodeLease lease(node);
      results.push_back(deserialize(node->data()));
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  rt.stop();
  ASSERT_EQ(results.size(), 5u);
  for (const Vec& sum : results) EXPECT_EQ(sum, expected);
}

TEST_F(SmcTest, EActorsRingDynamicMatchesSdkSequence) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 8;
  config.dynamic = true;

  // Reference sequence from the SDK implementation.
  std::vector<Vec> expected;
  {
    SdkSecureSum reference(config);
    for (int i = 0; i < 3; ++i) expected.push_back(reference.run_once());
  }

  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 4096;
  core::Runtime rt(options);
  SmcDeployment deployment = install_secure_sum(rt, config);
  rt.start();
  for (int i = 0; i < 3; ++i) {
    concurrent::Node* req = rt.public_pool().get();
    ASSERT_NE(req, nullptr);
    deployment.requests->push(req);
  }
  std::vector<Vec> results;
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (results.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* node = deployment.results->pop()) {
      concurrent::NodeLease lease(node);
      results.push_back(deserialize(node->data()));
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  rt.stop();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results, expected);
}

TEST_F(SmcTest, EActorsSteadyStateAvoidsTransitions) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 4;

  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 4096;
  core::Runtime rt(options);
  SmcDeployment deployment = install_secure_sum(rt, config);
  rt.start();
  // Warm up one round so every worker has entered its enclave.
  concurrent::Node* req = rt.public_pool().get();
  deployment.requests->push(req);
  auto deadline = std::chrono::steady_clock::now() + 10s;
  concurrent::Node* result = nullptr;
  while (result == nullptr && std::chrono::steady_clock::now() < deadline) {
    result = deployment.results->pop();
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_NE(result, nullptr);
  concurrent::NodeLease(result).reset();

  // Steady state: many rounds, no new transitions.
  sgxsim::reset_transition_stats();
  for (int i = 0; i < 10; ++i) {
    deployment.requests->push(rt.public_pool().get());
  }
  int received = 0;
  deadline = std::chrono::steady_clock::now() + 10s;
  while (received < 10 && std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* node = deployment.results->pop()) {
      concurrent::NodeLease lease(node);
      ++received;
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  ASSERT_EQ(received, 10);
  EXPECT_EQ(sgxsim::transition_stats().ecalls, 0u);
  rt.stop();
}

TEST_F(SmcTest, IntermediateMessagesAreMasked) {
  // The wire value after party 0 must not equal the secret itself: it is
  // masked by Rnd. (With the trusted RNG stubbed cheap but still random.)
  SmcConfig config;
  config.parties = 2;
  config.dim = 4;
  SdkSecureSum smc(config);
  // Run and confirm determinism of the *result* while the mask varies —
  // two runs produce the same sum (correctness) though Rnd differs.
  Vec a = smc.run_once();
  Vec b = smc.run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ea::smc

// --- voting layer -----------------------------------------------------------------

#include "smc/tcp_ring.hpp"
#include "smc/voting.hpp"

namespace ea::smc {
namespace {

TEST_F(SmcTest, BallotEncoding) {
  auto ballot = encode_ballot(2, 4);
  ASSERT_TRUE(ballot.has_value());
  EXPECT_EQ(*ballot, (Vec{0, 0, 1, 0}));
  EXPECT_FALSE(encode_ballot(4, 4).has_value());
}

TEST_F(SmcTest, WinnerSelection) {
  EXPECT_EQ(winner(Vec{1, 5, 3}), 1u);
  EXPECT_EQ(winner(Vec{2, 2, 1}), 0u);  // lowest index wins ties
  EXPECT_EQ(winner(Vec{0}), 0u);
}

TEST_F(SmcTest, ElectionTallyMatchesVotes) {
  std::vector<std::size_t> votes = {0, 2, 2, 1, 2, 0};
  Vec tally = run_election_sdk(votes, 3);
  EXPECT_EQ(tally, (Vec{2, 1, 3}));
  EXPECT_EQ(winner(tally), 2u);
}

TEST_F(SmcTest, ElectionRejectsInvalidVote) {
  EXPECT_THROW(run_election_sdk({0, 7}, 3), std::invalid_argument);
  EXPECT_THROW(run_election_sdk({0}, 3), std::invalid_argument);
}

TEST_F(SmcTest, ElectionUnanimous) {
  std::vector<std::size_t> votes(5, 1);
  Vec tally = run_election_sdk(votes, 2);
  EXPECT_EQ(tally, (Vec{0, 5}));
}

// --- distributed (TCP) ring --------------------------------------------------------

TEST_F(SmcTest, TcpRingComputesCorrectSum) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 16;
  TcpSecureSum smc(config);
  EXPECT_EQ(smc.run_once(), smc.expected_sum());
}

TEST_F(SmcTest, TcpRingMatchesColocatedResult) {
  SmcConfig config;
  config.parties = 4;
  config.dim = 8;
  TcpSecureSum distributed(config);
  SdkSecureSum colocated(config);
  // Identical deterministic secrets: identical sums.
  EXPECT_EQ(distributed.run_once(), colocated.run_once());
}

TEST_F(SmcTest, TcpRingRepeatedInvocations) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 4;
  TcpSecureSum smc(config);
  Vec expected = smc.expected_sum();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(smc.run_once(), expected);
}

TEST_F(SmcTest, TcpRingPaysOcallsPerHop) {
  SmcConfig config;
  config.parties = 3;
  config.dim = 4;
  TcpSecureSum smc(config);
  smc.run_once();
  sgxsim::reset_transition_stats();
  smc.run_once();
  // Each party sends and/or receives inside its ecall via OCalls: at least
  // 2 OCalls per hop (send + recv across the ring).
  EXPECT_GE(sgxsim::transition_stats().ocalls, 6u);
}

}  // namespace
}  // namespace ea::smc
