// Heavier cross-module scenarios: correctness sweeps and conservation
// invariants under realistic concurrent load.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "core/runtime.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/failpoint.hpp"
#include "smc/party_actor.hpp"
#include "smc/sdk_ring.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

namespace ea {
namespace {

using namespace std::chrono_literals;

class StressTest : public ::testing::Test {
 protected:
  StressTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// --- SMC correctness across the full parameter matrix ------------------------

class SmcMatrix
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, bool>> {
 protected:
  SmcMatrix() {
    sgxsim::cost_model().ecall_cycles = 10;
    sgxsim::cost_model().ocall_cycles = 10;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

TEST_P(SmcMatrix, SdkRingCorrectForAllConfigs) {
  auto [parties, dim, dynamic] = GetParam();
  smc::SmcConfig config;
  config.parties = parties;
  config.dim = dim;
  config.dynamic = dynamic;
  smc::SdkSecureSum smc(config);
  for (int round = 0; round < 3; ++round) {
    smc::Vec expected = smc.expected_sum();
    EXPECT_EQ(smc.run_once(), expected) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SmcMatrix,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{128}),
                       ::testing::Bool()),
    [](const auto& suite_info) {
      return "p" + std::to_string(std::get<0>(suite_info.param)) + "_d" +
             std::to_string(std::get<1>(suite_info.param)) +
             (std::get<2>(suite_info.param) ? "_dyn" : "_plain");
    });

// --- worker scheduling fairness ------------------------------------------------

TEST_F(StressTest, RoundRobinGivesEveryActorTurns) {
  struct Counter : core::Actor {
    using core::Actor::Actor;
    bool body() override { return false; }
  };
  core::Runtime rt;
  std::vector<core::Actor*> actors;
  for (int i = 0; i < 5; ++i) {
    auto actor = std::make_unique<Counter>("c" + std::to_string(i));
    actors.push_back(actor.get());
    rt.add_actor(std::move(actor));
  }
  rt.add_worker("w", {0}, {"c0", "c1", "c2", "c3", "c4"});
  rt.start();
  std::this_thread::sleep_for(50ms);
  rt.stop();

  // Round-robin: all invocation counts within one round of each other.
  std::uint64_t min_inv = ~0ull, max_inv = 0;
  for (core::Actor* actor : actors) {
    min_inv = std::min(min_inv, actor->invocations());
    max_inv = std::max(max_inv, actor->invocations());
  }
  EXPECT_GT(min_inv, 0u);
  EXPECT_LE(max_inv - min_inv, 1u);
}

TEST_F(StressTest, MakePoolIsIndependentOfPublicPool) {
  core::Runtime rt;
  concurrent::Pool& big = rt.make_pool(4, 128 * 1024);
  EXPECT_EQ(big.size(), 4u);
  concurrent::Node* n = big.get();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->capacity, 128u * 1024u);
  EXPECT_EQ(n->home, &big);
  big.put(n);
  EXPECT_EQ(rt.public_pool().size(), core::RuntimeOptions{}.pool_nodes);
}

// --- XMPP reconnect and conservation ---------------------------------------------

core::RuntimeOptions big_runtime() {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  return options;
}

TEST_F(StressTest, ClientReconnectRestoresRouting) {
  core::Runtime rt(big_runtime());
  xmpp::XmppServiceConfig config;
  config.instances = 2;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();

  xmpp::Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  {
    xmpp::Client bob;
    ASSERT_TRUE(bob.connect(service.port, "bob"));
    ASSERT_TRUE(alice.send_chat("bob", "first life"));
    auto msg = bob.recv(5000);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->body, "first life");
    bob.close();
  }
  // bob gone: delivery now fails (no offline store configured).
  // Allow the server a moment to process the disconnect.
  std::this_thread::sleep_for(100ms);
  ASSERT_TRUE(alice.send_chat("bob", "into the void"));
  auto err = alice.recv(5000);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, "stream:error");

  // bob reconnects (likely on the other instance due to round-robin).
  xmpp::Client bob2;
  ASSERT_TRUE(bob2.connect(service.port, "bob"));
  ASSERT_TRUE(alice.send_chat("bob", "second life"));
  auto msg = bob2.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "second life");
  rt.stop();
}

#ifdef EA_FAILPOINTS
// Same routing-restoration property, but the outage is an injected socket
// reset and the healing is the client's own enable_reconnect() machinery
// instead of a hand-rolled second client.
TEST_F(StressTest, ClientAutoReconnectSurvivesInjectedReset) {
  util::failpoint::clear_all();
  core::Runtime rt(big_runtime());
  xmpp::XmppServiceConfig config;
  config.instances = 2;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();

  xmpp::Client alice, bob;
  alice.enable_reconnect();
  bob.enable_reconnect();
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));

  // The next read anywhere in the process fails with a connection reset;
  // whoever absorbs it (a server READER or one of the clients) must heal
  // without outside help. Resend until a post-reset message arrives.
  util::failpoint::set("net.socket.read", "once(-1)");
  bool delivered = false;
  auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!delivered && std::chrono::steady_clock::now() < deadline) {
    alice.send_chat("bob", "after the reset");
    auto resend_at = std::chrono::steady_clock::now() + 300ms;
    while (!delivered && std::chrono::steady_clock::now() < resend_at) {
      auto msg = bob.recv(50);
      if (msg.has_value() && msg->kind == "chat" &&
          msg->body == "after the reset") {
        delivered = true;
      }
    }
  }
  EXPECT_TRUE(delivered);
  EXPECT_GE(util::failpoint::hits("net.socket.read"), 1u);
  util::failpoint::clear_all();
  rt.stop();
}
#endif  // EA_FAILPOINTS

TEST_F(StressTest, MessageConservationUnderConcurrentChatter) {
  // N senders fire a burst at one receiver; every message must arrive
  // exactly once (mbox MPMC + writer serialisation must not drop or
  // duplicate).
  core::Runtime rt(big_runtime());
  xmpp::XmppServiceConfig config;
  config.instances = 2;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();

  constexpr int kSenders = 4;
  constexpr int kPerSender = 25;

  xmpp::Client receiver;
  ASSERT_TRUE(receiver.connect(service.port, "sink"));

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      xmpp::Client client;
      if (!client.connect(service.port, "src" + std::to_string(s))) return;
      for (int i = 0; i < kPerSender; ++i) {
        while (!client.send_chat(
            "sink", std::to_string(s) + ":" + std::to_string(i))) {
          std::this_thread::sleep_for(1ms);
        }
      }
      // Keep the connection open until the receiver is done, otherwise
      // in-flight messages could race the disconnect.
      std::this_thread::sleep_for(2s);
    });
  }

  std::map<std::string, int> seen;
  int total = 0;
  auto deadline = std::chrono::steady_clock::now() + 15s;
  while (total < kSenders * kPerSender &&
         std::chrono::steady_clock::now() < deadline) {
    auto msg = receiver.recv(100);
    if (msg.has_value() && msg->kind == "chat") {
      ++seen[msg->body];
      ++total;
    }
  }
  for (auto& t : senders) t.join();
  rt.stop();

  EXPECT_EQ(total, kSenders * kPerSender);
  for (int s = 0; s < kSenders; ++s) {
    for (int i = 0; i < kPerSender; ++i) {
      std::string key = std::to_string(s) + ":" + std::to_string(i);
      EXPECT_EQ(seen[key], 1) << key;
    }
  }
}

}  // namespace
}  // namespace ea
