// Supervision soak tests under fault injection (ctest labels: supervise,
// fault; EA_FAILPOINTS builds only).
//
// The robustness claim of DESIGN.md §12, demonstrated end to end: with a
// percentage of every actor body() replaced by an injected abort-class
// fault and sockets reset mid-conversation, supervised deployments keep
// delivering — the XMPP echo service loses no acknowledged message, the
// TCP secure-sum ring computes only correct sums, no healthy actor is
// quarantined, and node pools conserve once the dust settles.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/backoff.hpp"
#include "core/health.hpp"
#include "core/runtime.hpp"
#include "core/supervisor.hpp"
#include "net/actors.hpp"
#include "net/reconnector.hpp"
#include "net/socket.hpp"
#include "net/socket_table.hpp"
#include "sgxsim/cost_model.hpp"
#include "smc/net_ring.hpp"
#include "util/failpoint.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

namespace fp = ea::util::failpoint;

namespace ea {
namespace {

using namespace std::chrono_literals;

concurrent::Node* pop_within(concurrent::Mbox& box,
                             std::chrono::milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* n = box.pop()) return n;
    std::this_thread::sleep_for(1ms);
  }
  return nullptr;
}

// Lenient supervision for fault storms: restarts are fast and effectively
// unbudgeted, so only a genuinely unrecoverable actor could be quarantined.
core::SupervisorActor::Options storm_opts() {
  core::SupervisorActor::Options opts;
  opts.sweep_interval_us = 200;
  opts.default_policy.backoff = core::BackoffPolicy{100, 2000, 2, 20};
  opts.default_policy.max_restarts = 1'000'000;
  opts.default_policy.window_us = 10'000'000;
  return opts;
}

struct FlakyActor : core::Actor {
  using core::Actor::Actor;
  std::atomic<bool> throw_next{false};
  bool body() override {
    if (throw_next.load(std::memory_order_relaxed)) {
      throw std::runtime_error("boom");
    }
    return true;
  }
};

class SupervisionSoakTest : public ::testing::Test {
 protected:
  SupervisionSoakTest() {
    sgxsim::cost_model().ecall_cycles = 10;
    sgxsim::cost_model().ocall_cycles = 10;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
    fp::clear_all();
    fp::reset_counters();
  }
  ~SupervisionSoakTest() override { fp::clear_all(); }
  sgxsim::ScopedCostModel scoped_;
};

// Registers a managed connection against a loopback listener and waits for
// the first status note. Used by the census and refusal tests.
struct ReconnectScenario {
  core::Runtime rt;
  net::NetSubsystem net;
  net::ReconnectorActor* recon = nullptr;
  concurrent::Mbox accepts;
  concurrent::Mbox data;
  concurrent::Mbox status;
  std::uint64_t conn = 0;

  ReconnectScenario() {
    net = net::install_networking(rt, "net.sys", {0});
    recon = &net::install_reconnector(rt, net);

    net::Socket listener = net::Socket::listen_on(0);
    EXPECT_TRUE(listener.valid());
    std::uint16_t port = listener.local_port();
    net::SocketId lid = net.table->add(std::move(listener));
    concurrent::Node* n = rt.public_pool().get();
    EXPECT_NE(n, nullptr);
    net::AcceptSubscribe sub;
    sub.listener = lid;
    sub.reply = &accepts;
    net::write_struct(*n, sub);
    net.accepter->requests().push(n);

    net::ConnSpec spec;
    std::memcpy(spec.host, "127.0.0.1", sizeof("127.0.0.1"));
    spec.port = port;
    spec.data = &data;
    spec.status = &status;
    spec.backoff = core::BackoffPolicy{1000, 20'000, 2, 0};
    spec.max_attempts = 0;
    conn = recon->add_connection(spec);
  }

  net::ConnStatus wait_status(std::chrono::milliseconds budget) {
    net::ConnStatus st{};
    concurrent::NodeLease lease(pop_within(status, budget));
    EXPECT_TRUE(lease);
    if (lease) {
      EXPECT_TRUE(net::read_struct(*lease.get(), st));
    }
    return st;
  }
};

// --- failpoint census --------------------------------------------------------

TEST_F(SupervisionSoakTest, CensusCoversSupervisionFailpointSites) {
  // Each site registers itself at its first evaluation; traverse all three
  // code paths, then assert the census lists them.

  // actor.body.throw: any contained invocation evaluates it.
  FlakyActor dummy("census.dummy");
  core::invoke_contained(dummy);

  // supervisor.restart.fail: one completed restart evaluates it.
  {
    core::Runtime rt;
    auto& actor = static_cast<FlakyActor&>(
        rt.add_actor(std::make_unique<FlakyActor>("census.flaky")));
    core::SupervisorActor::Options opts;
    opts.sweep_interval_us = 0;
    opts.default_policy.backoff = core::BackoffPolicy{0, 0, 2, 0};
    auto& sup = static_cast<core::SupervisorActor&>(
        rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
    rt.start();
    actor.throw_next = true;
    core::invoke_contained(actor);
    actor.throw_next = false;
    sup.body();
    sup.body();
    EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);
    rt.stop();
  }

  // net.reconnect.refuse: evaluated on every successful OpenReply.
  {
    ReconnectScenario scenario;
    scenario.rt.start();
    net::ConnStatus st = scenario.wait_status(5000ms);
    EXPECT_EQ(st.up, 1);
    scenario.rt.stop();
  }

  auto names = fp::sites();
  auto has = [&](const char* site) {
    return std::find(names.begin(), names.end(), site) != names.end();
  };
  EXPECT_TRUE(has("actor.body.throw"));
  EXPECT_TRUE(has("supervisor.restart.fail"));
  EXPECT_TRUE(has("net.reconnect.refuse"));
}

// --- targeted injections -----------------------------------------------------

TEST_F(SupervisionSoakTest, InjectedRestartFailureRetriesUntilHealed) {
  core::Runtime rt;
  auto& actor = static_cast<FlakyActor&>(
      rt.add_actor(std::make_unique<FlakyActor>("flaky")));
  core::SupervisorActor::Options opts;
  opts.sweep_interval_us = 0;
  opts.default_policy.backoff = core::BackoffPolicy{0, 0, 2, 0};
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
  rt.start();

  actor.throw_next = true;
  core::invoke_contained(actor);
  actor.throw_next = false;

  ASSERT_TRUE(fp::set("supervisor.restart.fail", "once"));
  sup.body();  // schedule
  sup.body();  // perform -> injected restart failure
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  EXPECT_EQ(sup.restart_failures(), 1u);
  EXPECT_GE(fp::hits("supervisor.restart.fail"), 1u);

  sup.body();  // re-schedule
  sup.body();  // perform, fault consumed: succeeds
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);
  EXPECT_EQ(sup.restarts_performed(), 1u);
  rt.stop();
}

TEST_F(SupervisionSoakTest, ReconnectorSurvivesRefusedOpen) {
  ReconnectScenario scenario;
  // The first open is refused at the handshake layer; the reconnector must
  // treat it as a failed attempt, back off, and succeed on the retry.
  ASSERT_TRUE(fp::set("net.reconnect.refuse", "once"));
  scenario.rt.start();

  net::ConnStatus st = scenario.wait_status(10'000ms);
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.epoch, 1u);
  EXPECT_EQ(scenario.recon->opens(), 1u);
  EXPECT_GE(scenario.recon->open_failures(), 1u);
  EXPECT_GE(fp::hits("net.reconnect.refuse"), 1u);
  scenario.rt.stop();
}

// --- XMPP echo soak ----------------------------------------------------------

TEST_F(SupervisionSoakTest, XmppEchoLosesNoAckedMessageUnderFaultStorm) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = 2;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  core::SupervisorActor& sup = core::install_supervisor(rt, storm_opts());

  // 1% of every (non-exempt) actor body turns into an abort-class fault.
  ASSERT_TRUE(fp::set("actor.body.throw", "1%return"));
  rt.start();

  xmpp::ClientReconnectPolicy reconnect;
  reconnect.max_attempts = 30;
  xmpp::Client alice, bob;
  alice.enable_reconnect(reconnect);
  bob.enable_reconnect(reconnect);
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));

  // Bob echoes every chat back to alice; alice resends each message until
  // its echo arrives (= the acknowledgement), so a delivered echo proves
  // the round trip survived whatever faults hit in between.
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto msg = bob.recv(50);
      if (msg.has_value() && msg->kind == "chat" && msg->decrypt_ok) {
        for (int r = 0; r < 40 && !bob.send_chat("alice", msg->body); ++r) {
          std::this_thread::sleep_for(5ms);
        }
      }
    }
  });

  constexpr int kMessages = 25;
  auto deadline = std::chrono::steady_clock::now() + 120s;
  int delivered = 0;
  for (int i = 0; i < kMessages; ++i) {
    std::string payload = "echo-" + std::to_string(i);
    bool acked = false;
    while (!acked && std::chrono::steady_clock::now() < deadline) {
      alice.send_chat("bob", payload);
      auto resend_at = std::chrono::steady_clock::now() + 300ms;
      while (!acked && std::chrono::steady_clock::now() < resend_at) {
        auto msg = alice.recv(50);
        if (msg.has_value() && msg->kind == "chat" && msg->body == payload) {
          acked = true;
        }
      }
    }
    if (acked) ++delivered;
    // Periodic connection kills on top of the body-throw storm.
    if (i % 5 == 4) fp::set("net.socket.read", "once(-1)");
  }
  stop = true;
  echo.join();
  EXPECT_EQ(delivered, kMessages) << "an acknowledged round trip was lost";
  EXPECT_GE(fp::hits("actor.body.throw"), 1u);

  // Quiesce, then check the deployment healed rather than degraded: faults
  // were contained and restarted, and nothing healthy was quarantined.
  fp::clear_all();
  std::this_thread::sleep_for(200ms);
  core::HealthSnapshot snap = rt.health();
  EXPECT_EQ(snap.count_in_state(core::ActorState::kQuarantined), 0u);
  EXPECT_GE(sup.restarts_performed(), 1u);
  rt.stop();
}

// --- TCP secure-sum ring soak -------------------------------------------------

TEST_F(SupervisionSoakTest, NetRingComputesOnlyCorrectSumsUnderFaultStorm) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  net::NetSubsystem net = net::install_networking(rt, "net.sys", {0});
  net::ReconnectorActor& recon = net::install_reconnector(rt, net);
  smc::SmcConfig config;
  config.parties = 3;
  config.dim = 4;
  smc::NetRingDeployment dep = smc::install_net_ring(rt, config, net, recon);
  core::SupervisorActor& sup = core::install_supervisor(rt, storm_opts());

  ASSERT_TRUE(fp::set("actor.body.throw", "1%return"));
  rt.start();

  smc::Vec expected = dep.parties[0]->secret();
  for (std::size_t i = 1; i < dep.parties.size(); ++i) {
    smc::add_in_place(expected, dep.parties[i]->secret());
  }

  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    // Alternate rounds also get a socket reset somewhere in the ring: the
    // retransmit + reconnect machinery must re-feed the lost token.
    if (round % 2 == 1) fp::set("net.socket.read", "once(-1)");
    concurrent::Node* req = rt.public_pool().get();
    ASSERT_NE(req, nullptr);
    req->size = 0;
    dep.requests->push(req);

    concurrent::NodeLease result(pop_within(*dep.results, 60'000ms));
    ASSERT_TRUE(result) << "round " << round << " never completed";
    smc::Vec got = smc::deserialize(
        std::span<const std::uint8_t>(result->payload(), result->size));
    EXPECT_EQ(got, expected) << "round " << round;
  }
  EXPECT_EQ(dep.parties[0]->rounds_completed(),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_GE(fp::hits("actor.body.throw"), 1u);

  fp::clear_all();
  std::this_thread::sleep_for(300ms);
  core::HealthSnapshot snap = rt.health();
  EXPECT_EQ(snap.count_in_state(core::ActorState::kQuarantined), 0u);
  EXPECT_GE(sup.restarts_performed(), 1u);
  rt.stop();

  // Node conservation after the storm: drain every privately held queue
  // (the same hooks a quarantine would run) and the public pool must be
  // exactly full again.
  for (smc::NetRingParty* party : dep.parties) party->on_quarantine();
  net.opener->on_quarantine();
  net.accepter->on_quarantine();
  net.reader->on_quarantine();
  net.writer->on_quarantine();
  net.closer->on_quarantine();
  recon.on_quarantine();
  while (concurrent::Node* n = dep.requests->pop()) {
    concurrent::NodeLease(n).reset();
  }
  while (concurrent::Node* n = dep.results->pop()) {
    concurrent::NodeLease(n).reset();
  }
  snap = rt.health();
  EXPECT_EQ(snap.pool.free, snap.pool.capacity)
      << "nodes leaked during the fault storm";
}

}  // namespace
}  // namespace ea
