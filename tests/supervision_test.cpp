// Supervision and self-healing tests (ctest label: supervise).
//
// Covers the failure-containment lifecycle (DESIGN.md §12) without fault
// injection: invoke_contained() converting throws into Failed transitions,
// the SupervisorActor's restart/backoff/quarantine policy machine (driven
// manually, one sweep at a time, so every schedule is deterministic), the
// stall watchdog, node conservation across quarantine, the WRITER's drain
// fairness rotation, the RECONNECTOR re-establishing a killed connection,
// and the TCP secure-sum ring computing correct sums end to end.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/backoff.hpp"
#include "core/health.hpp"
#include "core/runtime.hpp"
#include "core/supervisor.hpp"
#include "net/actors.hpp"
#include "net/reconnector.hpp"
#include "net/socket.hpp"
#include "net/socket_table.hpp"
#include "sgxsim/cost_model.hpp"
#include "smc/net_ring.hpp"
#include "util/bytes.hpp"

namespace ea {
namespace {

using namespace std::chrono_literals;

// --- helpers ---------------------------------------------------------------

// An actor whose failure behaviour is scripted from the test thread.
struct FlakyActor : core::Actor {
  using core::Actor::Actor;
  std::atomic<bool> throw_next{false};
  std::atomic<bool> restart_throws{false};
  std::atomic<int> restarted{0};
  std::atomic<int> quarantined{0};

  bool body() override {
    if (throw_next.load(std::memory_order_relaxed)) {
      throw std::runtime_error("boom");
    }
    return true;
  }
  void on_restart() override {
    if (restart_throws.load(std::memory_order_relaxed)) {
      throw std::runtime_error("restart failed");
    }
    restarted.fetch_add(1, std::memory_order_relaxed);
  }
  void on_quarantine() override {
    quarantined.fetch_add(1, std::memory_order_relaxed);
  }
};

// Supervisor options for manual driving: every body() call sweeps, restart
// delays are zero, and the budget is generous unless a test overrides it.
core::SupervisorActor::Options fast_opts() {
  core::SupervisorActor::Options opts;
  opts.sweep_interval_us = 0;
  opts.default_policy.backoff = core::BackoffPolicy{0, 0, 2, 0};
  opts.default_policy.max_restarts = 100;
  opts.default_policy.window_us = 60'000'000;
  return opts;
}

concurrent::Node* pop_within(concurrent::Mbox& box,
                             std::chrono::milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (concurrent::Node* n = box.pop()) return n;
    std::this_thread::sleep_for(1ms);
  }
  return nullptr;
}

class SupervisionTest : public ::testing::Test {
 protected:
  SupervisionTest() {
    sgxsim::cost_model().ecall_cycles = 10;
    sgxsim::cost_model().ocall_cycles = 10;
    sgxsim::cost_model().rng_cycles_per_byte = 0;
  }
  sgxsim::ScopedCostModel scoped_;
};

// --- backoff ---------------------------------------------------------------

TEST(BackoffScheduleTest, DeterministicForPolicyAndSeed) {
  core::BackoffPolicy policy{1000, 100000, 2, 20};
  core::BackoffSchedule a(policy, 42), b(policy, 42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_delay_us(), b.next_delay_us()) << "attempt " << i;
  }
  // A different seed produces a different jitter stream (with overwhelming
  // probability over 16 draws).
  core::BackoffSchedule c(policy, 43);
  bool any_diff = false;
  core::BackoffSchedule a2(policy, 42);
  for (int i = 0; i < 16; ++i) {
    any_diff |= a2.next_delay_us() != c.next_delay_us();
  }
  EXPECT_TRUE(any_diff);
}

TEST(BackoffScheduleTest, ZeroJitterIsExactExponentialWithCap) {
  core::BackoffSchedule s(core::BackoffPolicy{100, 750, 3, 0}, 1);
  EXPECT_EQ(s.next_delay_us(), 100u);
  EXPECT_EQ(s.next_delay_us(), 300u);
  EXPECT_EQ(s.next_delay_us(), 750u);  // 900 clipped to the cap
  EXPECT_EQ(s.next_delay_us(), 750u);
  EXPECT_EQ(s.attempts(), 4u);
}

TEST(BackoffScheduleTest, ResetRewindsBaseButNotJitterStream) {
  core::BackoffPolicy policy{100, 10000, 2, 0};
  core::BackoffSchedule s(policy, 7);
  (void)s.next_delay_us();
  (void)s.next_delay_us();
  s.reset();
  EXPECT_EQ(s.attempts(), 0u);
  EXPECT_EQ(s.next_delay_us(), 100u);  // back to the initial delay

  // With jitter, the stream keeps advancing across reset(): the delays
  // after a reset are not a replay of the first ones.
  core::BackoffPolicy jittered{10000, 1000000, 2, 20};
  core::BackoffSchedule j(jittered, 7);
  std::uint64_t first = j.next_delay_us();
  j.reset();
  std::uint64_t again = j.next_delay_us();
  core::BackoffSchedule j2(jittered, 7);
  EXPECT_EQ(first, j2.next_delay_us());
  EXPECT_NE(again, first);
}

// --- containment -----------------------------------------------------------

TEST_F(SupervisionTest, InvokeContainedConvertsThrowIntoFailed) {
  FlakyActor actor("flaky");
  EXPECT_TRUE(core::invoke_contained(actor));
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);

  actor.throw_next = true;
  EXPECT_FALSE(core::invoke_contained(actor));
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  EXPECT_EQ(actor.failures(), 1u);
  core::FailureInfo info = actor.last_failure();
  EXPECT_EQ(info.actor, "flaky");
  EXPECT_EQ(info.what, "boom");
  EXPECT_EQ(info.at_invocation, 2u);

  // Failed actors are skipped: no invocation, no further failures.
  std::uint64_t inv = actor.invocations();
  EXPECT_FALSE(core::invoke_contained(actor));
  EXPECT_EQ(actor.invocations(), inv);
  EXPECT_EQ(actor.failures(), 1u);
}

TEST_F(SupervisionTest, ConstructThrowIsContainedPerActor) {
  struct BadConstruct : core::Actor {
    using core::Actor::Actor;
    void construct(core::Runtime&) override {
      throw std::runtime_error("construct exploded");
    }
    bool body() override { return false; }
  };

  core::Runtime rt;
  auto& bad = rt.add_actor(std::make_unique<BadConstruct>("bad"));
  auto& good = rt.add_actor(std::make_unique<FlakyActor>("good"));
  EXPECT_NO_THROW(rt.start());

  EXPECT_EQ(bad.lifecycle(), core::ActorState::kFailed);
  EXPECT_EQ(bad.last_failure().what, "construct exploded");
  EXPECT_EQ(good.lifecycle(), core::ActorState::kRunnable);
  rt.stop();
}

// --- supervisor restart / budget / quarantine -------------------------------

TEST_F(SupervisionTest, SupervisorRestartsFailedActor) {
  core::Runtime rt;
  auto flaky = std::make_unique<FlakyActor>("flaky");
  FlakyActor& actor = static_cast<FlakyActor&>(rt.add_actor(std::move(flaky)));
  auto sup_owned = std::make_unique<core::SupervisorActor>("sup", fast_opts());
  auto& sup =
      static_cast<core::SupervisorActor&>(rt.add_actor(std::move(sup_owned)));
  rt.start();

  actor.throw_next = true;
  EXPECT_FALSE(core::invoke_contained(actor));
  ASSERT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  actor.throw_next = false;

  sup.body();  // schedules the restart (zero backoff)
  sup.body();  // performs it
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);
  EXPECT_EQ(actor.restarted.load(), 1);
  EXPECT_EQ(actor.restarts(), 1u);
  EXPECT_EQ(sup.restarts_performed(), 1u);
  EXPECT_EQ(sup.quarantines(), 0u);

  // The healed actor runs again.
  EXPECT_TRUE(core::invoke_contained(actor));
  rt.stop();
}

TEST_F(SupervisionTest, RestartBudgetExhaustionQuarantinesAndEscalates) {
  core::Runtime rt;
  auto& actor = static_cast<FlakyActor&>(
      rt.add_actor(std::make_unique<FlakyActor>("crashloop")));
  auto opts = fast_opts();
  opts.default_policy.max_restarts = 2;
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
  core::FailureInfo escalated;
  int escalations = 0;
  sup.set_escalation([&](const core::FailureInfo& info) {
    escalated = info;
    ++escalations;
  });
  rt.start();

  actor.throw_next = true;  // fails on every scheduling quantum
  for (int cycle = 0;
       cycle < 10 && actor.lifecycle() != core::ActorState::kQuarantined;
       ++cycle) {
    core::invoke_contained(actor);
    sup.body();  // schedule (or quarantine once the window is full)
    sup.body();  // perform
  }

  EXPECT_EQ(actor.lifecycle(), core::ActorState::kQuarantined);
  EXPECT_EQ(sup.restarts_performed(), 2u);
  EXPECT_EQ(sup.quarantines(), 1u);
  EXPECT_EQ(actor.quarantined.load(), 1);
  EXPECT_EQ(escalations, 1);
  EXPECT_EQ(escalated.actor, "crashloop");
  EXPECT_EQ(escalated.what, "boom");

  // Quarantine is terminal: no more invocations, no more restarts.
  std::uint64_t inv = actor.invocations();
  EXPECT_FALSE(core::invoke_contained(actor));
  EXPECT_EQ(actor.invocations(), inv);
  sup.body();
  sup.body();
  EXPECT_EQ(sup.restarts_performed(), 2u);
  rt.stop();
}

TEST_F(SupervisionTest, ThrowingRestartHookCountsAsFailureAndRetries) {
  core::Runtime rt;
  auto& actor = static_cast<FlakyActor&>(
      rt.add_actor(std::make_unique<FlakyActor>("flaky")));
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", fast_opts())));
  rt.start();

  actor.throw_next = true;
  core::invoke_contained(actor);
  actor.throw_next = false;
  actor.restart_throws = true;  // the first restart attempt itself fails

  sup.body();  // schedule
  sup.body();  // perform -> on_restart throws -> back to Failed
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  EXPECT_EQ(sup.restart_failures(), 1u);
  EXPECT_EQ(sup.restarts_performed(), 0u);
  EXPECT_EQ(actor.last_failure().what, "restart failed");

  actor.restart_throws = false;
  sup.body();  // re-schedule
  sup.body();  // perform, succeeds this time
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kRunnable);
  EXPECT_EQ(sup.restarts_performed(), 1u);
  EXPECT_EQ(actor.restarted.load(), 1);
  rt.stop();
}

TEST_F(SupervisionTest, IgnoredActorIsNeverTouched) {
  core::Runtime rt;
  auto& actor = static_cast<FlakyActor&>(
      rt.add_actor(std::make_unique<FlakyActor>("unmanaged")));
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", fast_opts())));
  sup.ignore("unmanaged");
  rt.start();

  actor.throw_next = true;
  core::invoke_contained(actor);
  for (int i = 0; i < 6; ++i) sup.body();
  EXPECT_EQ(actor.lifecycle(), core::ActorState::kFailed);
  EXPECT_EQ(sup.restarts_performed(), 0u);
  EXPECT_EQ(sup.quarantines(), 0u);
  rt.stop();
}

// --- stall watchdog ---------------------------------------------------------

TEST_F(SupervisionTest, WatchdogFlagsOnlyActorsWithStuckPendingWork) {
  struct Pending : core::Actor {
    using core::Actor::Actor;
    std::atomic<bool> pending{true};
    bool body() override { return false; }
    bool has_pending_work() const override {
      return pending.load(std::memory_order_relaxed);
    }
  };

  core::Runtime rt;
  auto& stuck = static_cast<Pending&>(
      rt.add_actor(std::make_unique<Pending>("stuck")));
  auto& busy = static_cast<Pending&>(
      rt.add_actor(std::make_unique<Pending>("busy")));
  auto& idle = static_cast<Pending&>(
      rt.add_actor(std::make_unique<Pending>("idle")));
  idle.pending = false;
  auto opts = fast_opts();
  opts.default_policy.stall_rounds = 3;
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
  rt.start();

  // `busy` keeps progressing between sweeps; `stuck` never moves despite
  // pending work; `idle` never moves but has an empty inbox.
  for (int i = 0; i < 6; ++i) {
    core::invoke_contained(busy);
    sup.body();
  }
  EXPECT_TRUE(stuck.stalled());
  EXPECT_FALSE(busy.stalled());
  EXPECT_FALSE(idle.stalled());
  EXPECT_EQ(sup.stalls_flagged(), 1u);

  // One quantum of progress clears the flag on the next sweep.
  core::invoke_contained(stuck);
  sup.body();
  EXPECT_FALSE(stuck.stalled());
  rt.stop();
}

// --- node conservation across quarantine ------------------------------------

TEST_F(SupervisionTest, QuarantineDrainsPrivatelyHeldNodesBackToPools) {
  struct Hoarder : core::Actor {
    using core::Actor::Actor;
    concurrent::Mbox box;
    bool body() override { throw std::runtime_error("boom"); }
    bool has_pending_work() const override { return !box.empty(); }
    void on_quarantine() override {
      while (concurrent::Node* n = box.pop()) concurrent::NodeLease(n).reset();
    }
  };

  core::Runtime rt;
  auto& hoarder = static_cast<Hoarder&>(
      rt.add_actor(std::make_unique<Hoarder>("hoarder")));
  auto opts = fast_opts();
  opts.default_policy.max_restarts = 0;  // quarantine on the first failure
  auto& sup = static_cast<core::SupervisorActor&>(
      rt.add_actor(std::make_unique<core::SupervisorActor>("sup", opts)));
  rt.start();

  concurrent::Pool& pool = rt.public_pool();
  std::size_t before = pool.size();
  for (int i = 0; i < 5; ++i) {
    concurrent::Node* n = pool.get();
    ASSERT_NE(n, nullptr);
    hoarder.box.push(n);
  }
  ASSERT_EQ(pool.size(), before - 5);

  core::invoke_contained(hoarder);  // fails
  sup.body();                       // budget 0: immediate quarantine
  EXPECT_EQ(hoarder.lifecycle(), core::ActorState::kQuarantined);
  EXPECT_EQ(pool.size(), before) << "quarantine must return every node";
  rt.stop();
}

TEST_F(SupervisionTest, WriterQuarantineParksQueuedNodes) {
  concurrent::NodeArena arena(8, 512);
  concurrent::Pool pool;
  pool.adopt(arena);
  auto table = std::make_shared<net::SocketTable>();
  net::WriterActor writer("writer", table);

  for (int i = 0; i < 3; ++i) {
    concurrent::Node* n = pool.get();
    ASSERT_NE(n, nullptr);
    n->fill("queued");
    n->tag = 7;  // no such socket; the nodes just sit in the input mbox
    writer.input().push(n);
  }
  EXPECT_TRUE(writer.has_pending_work());
  writer.on_quarantine();
  EXPECT_EQ(pool.size(), arena.count());
  EXPECT_FALSE(writer.has_pending_work());
}

// --- writer drain fairness ---------------------------------------------------

TEST_F(SupervisionTest, WriterServicesLaterSocketsWhileEarlierOneIsBlocked) {
  concurrent::NodeArena arena(8, 64 * 1024);
  concurrent::Pool pool;
  pool.adopt(arena);
  auto table = std::make_shared<net::SocketTable>();
  net::WriterActor writer("writer", table);

  auto make_pair = [&](net::Socket& peer) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
    peer = net::Socket(fds[1]);
    return table->add(net::Socket(fds[0]));
  };

  net::Socket peer_a, peer_b;
  net::SocketId a = make_pair(peer_a);
  net::SocketId b = make_pair(peer_b);
  ASSERT_LT(a, b);
  // Socket `a` gets a tiny kernel send buffer and more data than fits, so
  // its queue blocks mid-node with work still parked behind it.
  table->with(a, [](net::Socket& s) {
    int small = 4608;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  });

  concurrent::Node* big = pool.get();
  ASSERT_NE(big, nullptr);
  big->fill(std::string(60 * 1024, 'A'));
  big->tag = static_cast<std::uint64_t>(a);
  writer.input().push(big);

  concurrent::Node* small = pool.get();
  ASSERT_NE(small, nullptr);
  small->fill("b must not starve");
  small->tag = static_cast<std::uint64_t>(b);
  writer.input().push(small);

  // One round: `a` fills its kernel buffer and parks; `b` must still be
  // drained in the same round (the rotation may not stop at the first
  // blocked socket).
  writer.body();
  util::Bytes buf(1024, 0);
  long n = peer_b.read_nb(buf);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()),
                        static_cast<std::size_t>(n)),
            "b must not starve");
  EXPECT_LT(pool.size(), arena.count()) << "expected a parked node on `a`";

  // Once the peer drains, later rounds finish `a` too and return its node.
  std::size_t drained = 0;
  for (int round = 0; round < 300 && drained < 60 * 1024; ++round) {
    writer.body();
    long got;
    while ((got = peer_a.read_nb(buf)) > 0) {
      drained += static_cast<std::size_t>(got);
    }
  }
  EXPECT_EQ(drained, 60u * 1024u);
  writer.on_quarantine();
  EXPECT_EQ(pool.size(), arena.count());
}

// --- health snapshot ---------------------------------------------------------

TEST_F(SupervisionTest, HealthSnapshotReflectsLifecycleAndFailures) {
  core::Runtime rt;
  auto& actor = static_cast<FlakyActor&>(
      rt.add_actor(std::make_unique<FlakyActor>("flaky")));
  rt.add_actor(std::make_unique<FlakyActor>("healthy"));
  rt.add_worker("w0", {}, {"healthy"});
  rt.start();

  actor.throw_next = true;
  core::invoke_contained(actor);

  core::HealthSnapshot snap = rt.health();
  const core::ActorHealth* h = snap.actor("flaky");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->state, core::ActorState::kFailed);
  EXPECT_EQ(h->failures, 1u);
  EXPECT_EQ(h->last_error, "boom");
  EXPECT_EQ(snap.count_in_state(core::ActorState::kFailed), 1u);
  EXPECT_EQ(snap.count_in_state(core::ActorState::kQuarantined), 0u);
  EXPECT_EQ(snap.pool.capacity, core::RuntimeOptions{}.pool_nodes);
  EXPECT_EQ(snap.actor("no-such-actor"), nullptr);

  // Per-worker scheduler counters travel in the snapshot (and its string
  // form) in both modes; under the default static scheduler the run queues
  // are unused, so queue_depth and steals stay at zero.
  ASSERT_EQ(snap.workers.size(), 1u);
  const core::WorkerHealth* w = snap.worker("w0");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->steals, 0u);
  EXPECT_EQ(w->queue_depth, 0u);
  EXPECT_GE(w->dispatches, w->rounds);  // one dispatch per actor per round
  EXPECT_EQ(snap.worker("no-such-worker"), nullptr);
  const std::string text = snap.to_string();
  EXPECT_NE(text.find("worker w0"), std::string::npos);
  EXPECT_NE(text.find("queue_depth"), std::string::npos);
  EXPECT_NE(text.find("steals"), std::string::npos);
  rt.stop();
}

// --- reconnector -------------------------------------------------------------

TEST_F(SupervisionTest, ReconnectorReestablishesAfterPeerCloses) {
  core::RuntimeOptions options;
  options.pool_nodes = 4096;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  net::NetSubsystem net = net::install_networking(rt, "net.sys", {0});
  net::ReconnectorActor& recon = net::install_reconnector(rt, net);

  // A listener whose accepted sockets land in a test-owned mbox.
  net::Socket listener = net::Socket::listen_on(0);
  ASSERT_TRUE(listener.valid());
  std::uint16_t port = listener.local_port();
  net::SocketId lid = net.table->add(std::move(listener));
  concurrent::Mbox accepts;
  {
    concurrent::Node* n = rt.public_pool().get();
    ASSERT_NE(n, nullptr);
    net::AcceptSubscribe sub;
    sub.listener = lid;
    sub.reply = &accepts;
    net::write_struct(*n, sub);
    net.accepter->requests().push(n);
  }

  concurrent::Mbox data, status;
  net::ConnSpec spec;
  std::memcpy(spec.host, "127.0.0.1", sizeof("127.0.0.1"));
  spec.port = port;
  spec.data = &data;
  spec.status = &status;
  spec.backoff = core::BackoffPolicy{1000, 20'000, 2, 0};
  spec.max_attempts = 0;
  std::uint64_t conn = recon.add_connection(spec);
  rt.start();

  // First open: status note with epoch 1, and the server side accepts.
  net::ConnStatus st{};
  {
    concurrent::NodeLease lease(pop_within(status, 5000ms));
    ASSERT_TRUE(lease);
    ASSERT_TRUE(net::read_struct(*lease.get(), st));
  }
  EXPECT_EQ(st.conn_id, conn);
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.epoch, 1u);
  net::SocketId server_side = -1;
  {
    concurrent::NodeLease lease(pop_within(accepts, 5000ms));
    ASSERT_TRUE(lease);
    server_side = static_cast<net::SocketId>(lease->tag);
  }

  // The peer dies: READER reports EOF (zero-size node) on the data mbox,
  // and the owner — this test — turns it into a down note.
  net.table->close(server_side);
  {
    concurrent::Node* note = pop_within(data, 5000ms);
    ASSERT_NE(note, nullptr);
    ASSERT_EQ(note->size, 0u);
    note->tag = conn;
    recon.control().push(note);
  }

  // The reconnector redials: fresh status with a bumped epoch, and the
  // server accepts a second connection.
  {
    concurrent::NodeLease lease(pop_within(status, 5000ms));
    ASSERT_TRUE(lease);
    ASSERT_TRUE(net::read_struct(*lease.get(), st));
  }
  EXPECT_EQ(st.up, 1);
  EXPECT_EQ(st.epoch, 2u);
  {
    concurrent::NodeLease lease(pop_within(accepts, 5000ms));
    ASSERT_TRUE(lease);
  }
  EXPECT_EQ(recon.opens(), 2u);
  EXPECT_EQ(recon.reconnects(), 1u);
  rt.stop();
}

// --- TCP secure-sum ring ------------------------------------------------------

TEST_F(SupervisionTest, NetRingComputesCorrectSumsOverTcp) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  net::NetSubsystem net = net::install_networking(rt, "net.sys", {0});
  net::ReconnectorActor& recon = net::install_reconnector(rt, net);
  smc::SmcConfig config;
  config.parties = 3;
  config.dim = 8;
  smc::NetRingDeployment dep = smc::install_net_ring(rt, config, net, recon);
  rt.start();

  smc::Vec expected = dep.parties[0]->secret();
  for (std::size_t i = 1; i < dep.parties.size(); ++i) {
    smc::add_in_place(expected, dep.parties[i]->secret());
  }

  for (int round = 0; round < 3; ++round) {
    concurrent::Node* req = rt.public_pool().get();
    ASSERT_NE(req, nullptr);
    req->size = 0;
    dep.requests->push(req);

    concurrent::NodeLease result(pop_within(*dep.results, 20'000ms));
    ASSERT_TRUE(result) << "round " << round << " produced no result";
    smc::Vec got = smc::deserialize(
        std::span<const std::uint8_t>(result->payload(), result->size));
    EXPECT_EQ(got, expected) << "round " << round;
  }
  EXPECT_EQ(dep.parties[0]->rounds_completed(), 3u);
  rt.stop();
}

TEST_F(SupervisionTest, NetRingRejectsDynamicSecrets) {
  core::Runtime rt;
  net::NetSubsystem net = net::install_networking(rt, "net.sys", {0});
  net::ReconnectorActor& recon = net::install_reconnector(rt, net);
  smc::SmcConfig config;
  config.dynamic = true;
  EXPECT_THROW(smc::install_net_ring(rt, config, net, recon),
               std::invalid_argument);
}

}  // namespace
}  // namespace ea
