// Thread-safety annotation no-op proof.
//
// The EA_* capability macros (concurrent/thread_safety.hpp) carry the Clang
// Thread Safety Analysis in -DEA_THREAD_SAFETY=ON builds; everywhere else
// they MUST vanish without a trace — no tokens, no codegen, no layout
// change — or annotating the hot-path locks would not be free. This suite
// proves the "vanish" half on GCC (and any non-clang compiler) by
// stringifying the macro expansions and asserting they are empty, and
// proves on every compiler that annotated code compiles and behaves.

#include <gtest/gtest.h>

#include <type_traits>

#include "concurrent/hle_lock.hpp"
#include "concurrent/thread_safety.hpp"

namespace ea {
namespace {

// Double indirection so the macro argument is macro-expanded BEFORE being
// stringified: EA_TS_STR(EA_GUARDED_BY(x)) sees the post-expansion tokens.
#define EA_TS_STR_IMPL(...) #__VA_ARGS__
#define EA_TS_STR(...) EA_TS_STR_IMPL(__VA_ARGS__)

#if !defined(__clang__)
// On GCC every annotation macro must expand to zero tokens: the stringified
// expansion is the empty string (sizeof 1 == just the NUL terminator).
static_assert(sizeof(EA_TS_STR(EA_CAPABILITY("spinlock"))) == 1,
              "EA_CAPABILITY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_SCOPED_CAPABILITY)) == 1,
              "EA_SCOPED_CAPABILITY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_GUARDED_BY(lock_))) == 1,
              "EA_GUARDED_BY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_PT_GUARDED_BY(lock_))) == 1,
              "EA_PT_GUARDED_BY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_REQUIRES(lock_))) == 1,
              "EA_REQUIRES must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_REQUIRES(a_, b_))) == 1,
              "variadic EA_REQUIRES must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_ACQUIRE())) == 1,
              "EA_ACQUIRE must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_RELEASE())) == 1,
              "EA_RELEASE must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_TRY_ACQUIRE(true, lock_))) == 1,
              "EA_TRY_ACQUIRE must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_EXCLUDES(lock_))) == 1,
              "EA_EXCLUDES must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_ASSERT_CAPABILITY(lock_))) == 1,
              "EA_ASSERT_CAPABILITY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_RETURN_CAPABILITY(lock_))) == 1,
              "EA_RETURN_CAPABILITY must vanish off clang");
static_assert(sizeof(EA_TS_STR(EA_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "EA_NO_THREAD_SAFETY_ANALYSIS must vanish off clang");
#endif  // !__clang__

// Layout proof: annotating HleSpinLock as a capability must not change its
// size or alignment. 64 bytes = exactly the isolated cache line the lock
// has always occupied (128 under EA_LOCK_RANK, where the rank byte lands
// on a second line — a debug-build-only cost).
#if !defined(EA_LOCK_RANK)
static_assert(sizeof(concurrent::HleSpinLock) == 64,
              "capability annotation changed HleSpinLock layout");
#endif
static_assert(alignof(concurrent::HleSpinLock) == 64,
              "capability annotation changed HleSpinLock alignment");

// Behaviour proof: a fully annotated class compiles on every compiler and
// works. Under clang -Wthread-safety this class is also *analysed*, so it
// doubles as a fixture keeping the macros honest.
class EA_CAPABILITY("mutex") AnnotatedLock {
 public:
  void lock() EA_ACQUIRE() { locked_ = true; }
  void unlock() EA_RELEASE() { locked_ = false; }
  bool locked() const { return locked_; }

 private:
  bool locked_ = false;
};

class Counter {
 public:
  void increment() EA_EXCLUDES(lock_) {
    lock_.lock();
    increment_locked();
    lock_.unlock();
  }

  // Caller must hold lock_ — EA_REQUIRES makes the contract checkable.
  void increment_locked() EA_REQUIRES(lock_) { ++value_; }

  int value() EA_EXCLUDES(lock_) {
    lock_.lock();
    int v = value_;
    lock_.unlock();
    return v;
  }

  // tsa: test fixture modelling the runtime's lock-free probe pattern —
  // approximate reads tolerated by contract.
  int racy_probe() const EA_NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  AnnotatedLock lock_;
  int value_ EA_GUARDED_BY(lock_) = 0;
};

TEST(ThreadSafetyMacros, AnnotatedCodeCompilesAndRuns) {
  Counter c;
  c.increment();
  c.increment();
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(c.racy_probe(), 2);
}

TEST(ThreadSafetyMacros, ScopedGuardStillRaii) {
  concurrent::HleSpinLock lock;
  {
    concurrent::HleGuard guard(lock);
    // Annotated HleGuard still holds the lock for exactly this scope.
  }
  // Re-acquirable: the guard released on scope exit.
  { concurrent::HleGuard guard(lock); }
  SUCCEED();
}

TEST(ThreadSafetyMacros, SetRankIsANoopWithoutChecker) {
  concurrent::HleSpinLock lock;
  lock.set_rank(concurrent::LockRank::kMbox);
  { concurrent::HleGuard guard(lock); }
  SUCCEED();
}

}  // namespace
}  // namespace ea
