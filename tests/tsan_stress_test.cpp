// ThreadSanitizer-targeted concurrency stress tests (ctest label: tsan).
//
// These tests exist to give TSan real interleavings to chew on for the
// three concurrency primitives the whole runtime stands on: Mbox (MPMC
// FIFO), Pool (MPMC LIFO free-list) and cross-enclave Channels. They also
// assert the user-visible ordering/conservation contracts, so they are
// meaningful under a plain build too. Run them with:
//
//   cmake -B build-tsan -S . -DEA_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L tsan
//
// Iteration counts are sized for a TSan build on a small machine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/channel.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

namespace {

using ea::concurrent::Mbox;
using ea::concurrent::Node;
using ea::concurrent::NodeArena;
using ea::concurrent::Pool;

// Tag layout for the producer/consumer test: producer id in the high 16
// bits, per-producer sequence number in the low 48.
constexpr std::uint64_t make_tag(unsigned producer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(producer) << 48) | seq;
}

TEST(TsanStress, MboxFifoPerProducerUnderContention) {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 1500;

  NodeArena arena(256, 64);
  Pool pool;
  pool.adopt(arena);
  Mbox mbox;

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> producers_done{false};
  // order_ok flips false if any consumer ever observes a per-producer
  // sequence going backwards — mboxes promise FIFO per producer.
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);

  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t seq = 0; seq < kPerProducer;) {
        Node* n = pool.get();
        if (n == nullptr) {
          std::this_thread::yield();
          continue;
        }
        n->tag = make_tag(p, seq);
        mbox.push(n);
        ++seq;
      }
    });
  }

  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      // Last sequence this consumer saw from each producer.
      std::uint64_t last_seen[kProducers];
      bool seen_any[kProducers] = {};
      for (auto& v : last_seen) v = 0;
      for (;;) {
        Node* n = mbox.pop();
        if (n == nullptr) {
          if (producers_done.load(std::memory_order_acquire) && mbox.empty()) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        auto producer = static_cast<unsigned>(n->tag >> 48);
        std::uint64_t seq = n->tag & ((1ull << 48) - 1);
        if (seen_any[producer] && seq <= last_seen[producer]) {
          order_ok.store(false, std::memory_order_relaxed);
        }
        last_seen[producer] = seq;
        seen_any[producer] = true;
        pool.put(n);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  producers_done.store(true, std::memory_order_release);
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_TRUE(order_ok.load()) << "per-producer FIFO order violated";
  EXPECT_TRUE(mbox.empty());
  EXPECT_EQ(pool.size(), arena.count());
}

TEST(TsanStress, PoolGetPutChurn) {
  constexpr unsigned kThreads = 4;
  constexpr int kIterations = 4000;

  NodeArena arena(64, 64);
  Pool pool;
  pool.adopt(arena);

  std::atomic<std::uint64_t> total_gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        Node* n = pool.get();
        if (n == nullptr) {
          std::this_thread::yield();
          continue;
        }
        // Touch the payload so TSan sees the handoff of node memory
        // between threads, not just the free-list links.
        n->tag = t;
        n->fill(std::string_view("churn"));
        total_gets.fetch_add(1, std::memory_order_relaxed);
        pool.put(n);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(total_gets.load(), 0u);
  EXPECT_EQ(pool.size(), arena.count());
}

TEST(TsanStress, CrossEnclaveChannelPingPong) {
  constexpr int kRounds = 1500;

  auto& mgr = ea::sgxsim::EnclaveManager::instance();
  auto& ea1 = mgr.create("tsan.ping");
  auto& ea2 = mgr.create("tsan.pong");

  NodeArena arena(32, 128);
  Pool pool;
  pool.adopt(arena);

  ea::core::Channel channel("tsan.pingpong", {}, pool);
  ea::core::ChannelEnd* a = channel.connect(ea1.id());
  ea::core::ChannelEnd* b = channel.connect(ea2.id());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(channel.encrypted()) << "distinct enclaves must auto-encrypt";

  std::atomic<std::uint64_t> b_received{0};

  std::thread ponger([&] {
    std::uint8_t buf[8];
    for (int i = 0; i < kRounds;) {
      auto lease = b->recv();
      if (!lease) {
        std::this_thread::yield();
        continue;
      }
      EXPECT_EQ(lease.get()->size, 8u);
      std::memcpy(buf, lease.get()->payload(), 8);
      lease.reset();
      b_received.fetch_add(1, std::memory_order_relaxed);
      // Echo the value back, incremented.
      std::uint64_t v = ea::util::load_le64(buf) + 1;
      ea::util::store_le64(buf, v);
      while (!b->send(std::span<const std::uint8_t>(buf, 8))) {
        std::this_thread::yield();
      }
      ++i;
    }
  });

  std::uint8_t buf[8];
  for (int i = 0; i < kRounds; ++i) {
    ea::util::store_le64(buf, static_cast<std::uint64_t>(2 * i));
    while (!a->send(std::span<const std::uint8_t>(buf, 8))) {
      std::this_thread::yield();
    }
    for (;;) {
      auto lease = a->recv();
      if (!lease) {
        std::this_thread::yield();
        continue;
      }
      EXPECT_EQ(lease.get()->size, 8u);
      std::uint64_t v = ea::util::load_le64(lease.get()->payload());
      EXPECT_EQ(v, static_cast<std::uint64_t>(2 * i + 1));
      break;
    }
  }
  ponger.join();

  EXPECT_EQ(b_received.load(), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(channel.auth_failures(), 0u);
  EXPECT_EQ(pool.size(), arena.count()) << "all nodes must return to the pool";
}

}  // namespace
