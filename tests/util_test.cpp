#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "util/affinity.hpp"
#include "util/bench_report.hpp"
#include "util/bytes.hpp"
#include "util/cycles.hpp"
#include "util/env.hpp"
#include "util/latency_hist.hpp"
#include "util/logging.hpp"

namespace ea::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringConversionRoundTrip) {
  std::string s = "hello \x01 world";
  Bytes b = to_bytes(s);
  EXPECT_EQ(to_string(b), s);
}

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, LoadStoreLe) {
  std::uint8_t buf[8];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
  store_le64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefull);
}

TEST(Bytes, Rotl32) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotl32(1u, 31), 0x80000000u);
}

TEST(Bytes, RandomPrintableDeterministic) {
  std::string a = random_printable(42, 128);
  std::string b = random_printable(42, 128);
  std::string c = random_printable(43, 128);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 128u);
  for (char ch : a) {
    EXPECT_GE(ch, '!');
    EXPECT_LE(ch, '~');
  }
}

TEST(Env, IntParsing) {
  ::setenv("EA_TEST_INT", "1234", 1);
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 1234);
  ::setenv("EA_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 7);
  ::unsetenv("EA_TEST_INT");
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 7);
}

TEST(Env, DoubleParsing) {
  ::setenv("EA_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("EA_TEST_DBL", 1.0), 2.5);
  ::unsetenv("EA_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("EA_TEST_DBL", 1.0), 1.0);
}

TEST(Env, StringFallback) {
  ::unsetenv("EA_TEST_STR");
  EXPECT_EQ(env_str("EA_TEST_STR", "dflt"), "dflt");
  ::setenv("EA_TEST_STR", "value", 1);
  EXPECT_EQ(env_str("EA_TEST_STR", "dflt"), "value");
  ::unsetenv("EA_TEST_STR");
}

TEST(Cycles, RdtscMonotonicish) {
  std::uint64_t a = rdtsc();
  std::uint64_t b = rdtsc();
  EXPECT_LE(a, b + 1000000);  // same core: effectively monotonic
}

TEST(Cycles, BurnConsumesTime) {
  std::uint64_t start = rdtsc();
  burn_cycles(100000);
  std::uint64_t elapsed = rdtsc() - start;
  EXPECT_GE(elapsed, 100000u);
}

TEST(Affinity, PinClampsAndSucceeds) {
  EXPECT_TRUE(pin_current_thread({}));
  EXPECT_TRUE(pin_current_thread({0}));
  // CPUs beyond the machine size are clamped, not an error.
  EXPECT_TRUE(pin_current_thread({1000}));
  EXPECT_GE(online_cpus(), 1);
}

TEST(Logging, LevelGate) {
  LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

class RandomPrintableSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomPrintableSizes, ExactLength) {
  EXPECT_EQ(random_printable(7, GetParam()).size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomPrintableSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 150, 4096));

// --- LatencyHist (latency_hist.hpp, feeds bench schema v3) ---------------

TEST(LatencyHist, ExactBelowSubBucketRange) {
  LatencyHist h;
  for (std::uint64_t v : {0u, 1u, 5u, 31u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 31u);
  // Values below kSubBuckets land in exact buckets: the percentile of a
  // single-value histogram is that value.
  LatencyHist one;
  one.record(17);
  EXPECT_EQ(one.percentile(0.5), 17u);
  EXPECT_EQ(one.percentile(1.0), 17u);
}

TEST(LatencyHist, EmptyReportsZero) {
  LatencyHist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
}

TEST(LatencyHist, PercentilesTrackExactOrderStatistics) {
  // Against a sorted copy of the samples, every reported percentile must
  // sit within one bucket width (~1/32 relative) above the true order
  // statistic — the HDR error bound the bench reports rely on.
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(5.0, 1.5);  // skewed, long tail
  LatencyHist h;
  std::vector<std::uint64_t> samples;
  samples.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    auto v = static_cast<std::uint64_t>(dist(rng));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    std::size_t rank = static_cast<std::size_t>(q * samples.size());
    if (rank == 0) rank = 1;
    const double exact = static_cast<double>(samples[rank - 1]);
    const double approx = static_cast<double>(h.percentile(q));
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * (1.0 + 2.0 / LatencyHist::kSubBuckets) + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(h.percentile(1.0), samples.back());
}

TEST(LatencyHist, MergeEqualsCombinedRecording) {
  LatencyHist a, b, combined;
  for (std::uint64_t v = 1; v < 5000; v += 7) {
    (v % 2 == 0 ? a : b).record(v * v % 100'000);
    combined.record(v * v % 100'000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q));
  }
}

TEST(LatencyHist, BucketRoundTripOverPipe) {
  // bench_c100k's driver children serialise raw buckets to the parent;
  // add_bucket must reconstruct an equivalent histogram.
  LatencyHist src;
  for (std::uint64_t v : {3u, 64u, 65u, 4097u, 1u << 20}) src.record(v);
  LatencyHist dst;
  for (std::size_t i = 0; i < LatencyHist::kBuckets; ++i) {
    if (src.buckets()[i] != 0) dst.add_bucket(i, src.buckets()[i]);
  }
  EXPECT_EQ(dst.count(), src.count());
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    // max() degrades to the bucket upper bound after serialisation, so
    // percentiles may differ by at most that clamp.
    EXPECT_GE(dst.percentile(q), src.percentile(q));
    EXPECT_LE(dst.percentile(q),
              LatencyHist::upper_bound(LatencyHist::index_of(src.max())));
  }
  // Out-of-range bucket indexes are ignored, not UB.
  dst.add_bucket(LatencyHist::kBuckets + 10, 5);
  EXPECT_EQ(dst.count(), src.count());
}

TEST(LatencyHist, IndexAndBoundAreConsistent) {
  // Every value maps to a bucket whose [.., upper_bound] range contains it.
  for (std::uint64_t v = 0; v < 200'000; v = v * 2 + 1) {
    const std::size_t i = LatencyHist::index_of(v);
    EXPECT_LE(v, LatencyHist::upper_bound(i)) << v;
    if (i > 0) {
      EXPECT_GT(v, LatencyHist::upper_bound(i - 1)) << v;
    }
  }
}

// --- BenchReport schema v3 -----------------------------------------------

TEST(BenchReport, EmitsSchemaV3WithOptionalPercentiles) {
  BenchReport report("unit");
  report.add("tput", "epoll", 1000, 123.5, "msg/s");
  report.add("lat", "epoll", 1000, 42.0, "us",
             BenchPercentiles{10.0, 99.5, 250.0});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  // Percentile fields appear exactly once: on the latency row only.
  EXPECT_EQ(json.find("p50_us"), json.rfind("p50_us"));
  EXPECT_NE(json.find("\"p50_us\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 99.5"), std::string::npos);
  EXPECT_NE(json.find("\"p999_us\": 250"), std::string::npos);
  // The throughput row keeps the v2 shape.
  EXPECT_NE(json.find("\"scenario\": \"tput\""), std::string::npos);
  EXPECT_EQ(report.size(), 2u);
}

}  // namespace
}  // namespace ea::util
