#include <gtest/gtest.h>

#include <cstdlib>

#include "util/affinity.hpp"
#include "util/bytes.hpp"
#include "util/cycles.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace ea::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringConversionRoundTrip) {
  std::string s = "hello \x01 world";
  Bytes b = to_bytes(s);
  EXPECT_EQ(to_string(b), s);
}

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, LoadStoreLe) {
  std::uint8_t buf[8];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
  store_le64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefull);
}

TEST(Bytes, Rotl32) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotl32(1u, 31), 0x80000000u);
}

TEST(Bytes, RandomPrintableDeterministic) {
  std::string a = random_printable(42, 128);
  std::string b = random_printable(42, 128);
  std::string c = random_printable(43, 128);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 128u);
  for (char ch : a) {
    EXPECT_GE(ch, '!');
    EXPECT_LE(ch, '~');
  }
}

TEST(Env, IntParsing) {
  ::setenv("EA_TEST_INT", "1234", 1);
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 1234);
  ::setenv("EA_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 7);
  ::unsetenv("EA_TEST_INT");
  EXPECT_EQ(env_int("EA_TEST_INT", 7), 7);
}

TEST(Env, DoubleParsing) {
  ::setenv("EA_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("EA_TEST_DBL", 1.0), 2.5);
  ::unsetenv("EA_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("EA_TEST_DBL", 1.0), 1.0);
}

TEST(Env, StringFallback) {
  ::unsetenv("EA_TEST_STR");
  EXPECT_EQ(env_str("EA_TEST_STR", "dflt"), "dflt");
  ::setenv("EA_TEST_STR", "value", 1);
  EXPECT_EQ(env_str("EA_TEST_STR", "dflt"), "value");
  ::unsetenv("EA_TEST_STR");
}

TEST(Cycles, RdtscMonotonicish) {
  std::uint64_t a = rdtsc();
  std::uint64_t b = rdtsc();
  EXPECT_LE(a, b + 1000000);  // same core: effectively monotonic
}

TEST(Cycles, BurnConsumesTime) {
  std::uint64_t start = rdtsc();
  burn_cycles(100000);
  std::uint64_t elapsed = rdtsc() - start;
  EXPECT_GE(elapsed, 100000u);
}

TEST(Affinity, PinClampsAndSucceeds) {
  EXPECT_TRUE(pin_current_thread({}));
  EXPECT_TRUE(pin_current_thread({0}));
  // CPUs beyond the machine size are clamped, not an error.
  EXPECT_TRUE(pin_current_thread({1000}));
  EXPECT_GE(online_cpus(), 1);
}

TEST(Logging, LevelGate) {
  LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

class RandomPrintableSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomPrintableSizes, ExactLength) {
  EXPECT_EQ(random_printable(7, GetParam()).size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomPrintableSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 150, 4096));

}  // namespace
}  // namespace ea::util
