#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "sgxsim/cost_model.hpp"
#include "xmpp/baseline_server.hpp"
#include "xmpp/client.hpp"
#include "xmpp/e2e.hpp"
#include "xmpp/server.hpp"
#include "xmpp/stanza.hpp"

namespace ea::xmpp {
namespace {

// --- XML / stanza layer -------------------------------------------------------

TEST(Xml, ParseSimpleElement) {
  std::size_t pos = 0;
  auto node = parse_element("<message to='bob' from=\"alice\"/>", pos);
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(node->name, "message");
  ASSERT_NE(node->attr("to"), nullptr);
  EXPECT_EQ(*node->attr("to"), "bob");
  EXPECT_EQ(*node->attr("from"), "alice");
  EXPECT_EQ(node->attr("missing"), nullptr);
}

TEST(Xml, ParseNestedWithText) {
  std::size_t pos = 0;
  auto node =
      parse_element("<message><body>hi there</body><x/></message>", pos);
  ASSERT_TRUE(node.has_value());
  ASSERT_EQ(node->children.size(), 2u);
  EXPECT_EQ(node->children[0].name, "body");
  EXPECT_EQ(node->children[0].text, "hi there");
  EXPECT_NE(node->child("x"), nullptr);
  EXPECT_EQ(node->child("nope"), nullptr);
}

TEST(Xml, EscapeRoundTrip) {
  std::string nasty = "a<b>&c'd\"e";
  EXPECT_EQ(xml_unescape(xml_escape(nasty)), nasty);
}

TEST(Xml, SerializeParseRoundTrip) {
  XmlNode node;
  node.name = "message";
  node.set_attr("to", "bob@host");
  node.set_attr("type", "chat");
  XmlNode body;
  body.name = "body";
  body.text = "tricky <&> text";
  node.children.push_back(body);

  std::string wire = node.serialize();
  std::size_t pos = 0;
  auto parsed = parse_element(wire, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(pos, wire.size());
  EXPECT_EQ(parsed->name, "message");
  EXPECT_EQ(*parsed->attr("to"), "bob@host");
  EXPECT_EQ(parsed->child("body")->text, "tricky <&> text");
}

TEST(Xml, RejectsMismatchedClose) {
  std::size_t pos = 0;
  EXPECT_FALSE(parse_element("<a><b></a></b>", pos).has_value());
}

TEST(Xml, RejectsTruncated) {
  std::size_t pos = 0;
  EXPECT_FALSE(parse_element("<a attr='x'", pos).has_value());
}

TEST(StanzaStreamTest, EmitsEventsAcrossChunkBoundaries) {
  StanzaStream stream;
  std::string data = make_stream_open("srv") +
                     make_chat_message("a", "b", "hello") +
                     make_stream_close();
  // Feed one byte at a time — brutal fragmentation.
  std::vector<StanzaStream::Event> events;
  for (char c : data) {
    stream.feed(std::string_view(&c, 1));
    while (auto event = stream.next()) events.push_back(std::move(*event));
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, StanzaStream::EventType::kStreamOpen);
  EXPECT_EQ(events[1].type, StanzaStream::EventType::kStanza);
  EXPECT_EQ(events[1].node.name, "message");
  EXPECT_EQ(events[2].type, StanzaStream::EventType::kStreamClose);
  EXPECT_FALSE(stream.failed());
}

TEST(StanzaStreamTest, MultipleStanzasInOneChunk) {
  StanzaStream stream;
  stream.feed(make_auth("alice") + make_chat_message("a", "b", "1") +
              make_chat_message("a", "b", "2"));
  int count = 0;
  while (auto event = stream.next()) ++count;
  EXPECT_EQ(count, 3);
}

TEST(StanzaStreamTest, GarbageMarksFailure) {
  StanzaStream stream;
  stream.feed("this is not xml");
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_TRUE(stream.failed());
}

TEST(StanzaStreamTest, XmlDeclarationSkipped) {
  StanzaStream stream;
  stream.feed("<?xml version='1.0'?>" + make_auth("bob"));
  auto event = stream.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->node.name, "auth");
}

// --- service-level crypto -------------------------------------------------------

// --- Sharded routing tables ----------------------------------------------
//
// The Directory / RoomTable / RosterTable are sharded by client-id hash
// (kXmppShards, server.hpp): the tests spread enough distinct keys that
// every shard is exercised and the cross-shard sweeps (size, leave_all)
// see entries in more than one shard.

TEST(ShardedTables, DirectorySpansShards) {
  Directory dir;
  constexpr int kUsers = 200;  // ≫ kXmppShards: every shard gets keys
  for (int i = 0; i < kUsers; ++i) {
    dir.put("user" + std::to_string(i), Route{i, i % 3});
  }
  EXPECT_EQ(dir.size(), static_cast<std::size_t>(kUsers));
  for (int i = 0; i < kUsers; ++i) {
    auto route = dir.get("user" + std::to_string(i));
    ASSERT_TRUE(route.has_value()) << i;
    EXPECT_EQ(route->socket, i);
    EXPECT_EQ(route->instance, i % 3);
  }
  EXPECT_FALSE(dir.get("nobody").has_value());
  for (int i = 0; i < kUsers; i += 2) dir.remove("user" + std::to_string(i));
  EXPECT_EQ(dir.size(), static_cast<std::size_t>(kUsers / 2));
  EXPECT_FALSE(dir.get("user0").has_value());
  EXPECT_TRUE(dir.get("user1").has_value());
  // Overwrite goes to the same shard entry, not a duplicate.
  dir.put("user1", Route{999, 0});
  EXPECT_EQ(dir.get("user1")->socket, 999);
  EXPECT_EQ(dir.size(), static_cast<std::size_t>(kUsers / 2));
}

TEST(ShardedTables, RoomTableLeaveAllSweepsEveryShard) {
  RoomTable rooms;
  constexpr int kRooms = 64;
  for (int r = 0; r < kRooms; ++r) {
    const std::string room = "room" + std::to_string(r);
    rooms.join(room, "everywhere");  // lands in kRooms distinct shards
    rooms.join(room, "member" + std::to_string(r));
    rooms.join(room, "member" + std::to_string(r));  // idempotent
  }
  for (int r = 0; r < kRooms; ++r) {
    auto members = rooms.members("room" + std::to_string(r));
    ASSERT_EQ(members.size(), 2u) << r;
  }
  EXPECT_TRUE(rooms.members("ghost-room").empty());
  // leave_all walks all shards sequentially (release-before-acquire).
  rooms.leave_all("everywhere");
  for (int r = 0; r < kRooms; ++r) {
    auto members = rooms.members("room" + std::to_string(r));
    ASSERT_EQ(members.size(), 1u) << r;
    EXPECT_EQ(members[0], "member" + std::to_string(r));
  }
}

TEST(ShardedTables, RosterShardsBothDirectionsIndependently) {
  RosterTable roster;
  // watcher{i} watches contact{i % 5}: the two lookup directions hash
  // different keys and therefore different shards.
  constexpr int kWatchers = 100;
  for (int i = 0; i < kWatchers; ++i) {
    roster.add("watcher" + std::to_string(i),
               "contact" + std::to_string(i % 5));
    roster.add("watcher" + std::to_string(i),
               "contact" + std::to_string(i % 5));  // idempotent
  }
  for (int c = 0; c < 5; ++c) {
    auto watchers = roster.watchers_of("contact" + std::to_string(c));
    EXPECT_EQ(watchers.size(), static_cast<std::size_t>(kWatchers / 5)) << c;
  }
  for (int i = 0; i < kWatchers; ++i) {
    auto contacts = roster.contacts_of("watcher" + std::to_string(i));
    ASSERT_EQ(contacts.size(), 1u) << i;
    EXPECT_EQ(contacts[0], "contact" + std::to_string(i % 5));
  }
  EXPECT_TRUE(roster.watchers_of("contact99").empty());
  EXPECT_TRUE(roster.contacts_of("stranger").empty());
}

TEST(ShardedTables, ConcurrentMixedOperations) {
  // Shard locks under real contention: 8 threads hammer disjoint key
  // ranges plus a shared hot room. Run under TSan via the xmpp_test
  // binary; the assertion here is consistency of the final state.
  Directory dir;
  RoomTable rooms;
  RosterTable roster;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string jid =
            "t" + std::to_string(t) + "u" + std::to_string(i);
        dir.put(jid, Route{t * kPerThread + i, t});
        rooms.join("hot-room", jid);
        rooms.join("room-of-" + jid, jid);
        roster.add(jid, "celebrity");
        if (i % 3 == 0) {
          dir.remove(jid);
          rooms.leave_all(jid);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::size_t expected_live = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      if (i % 3 != 0) ++expected_live;
    }
  }
  EXPECT_EQ(dir.size(), expected_live);
  EXPECT_EQ(rooms.members("hot-room").size(), expected_live);
  EXPECT_EQ(roster.watchers_of("celebrity").size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(E2E, SealOpenRoundTrip) {
  auto key = user_key("alice", kCtxO2O);
  std::string sealed = seal_body(key, 42, "plaintext body");
  auto opened = open_body(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "plaintext body");
}

TEST(E2E, DistinctUsersDistinctKeys) {
  std::string sealed = seal_body(user_key("alice", kCtxO2O), 1, "secret");
  EXPECT_FALSE(open_body(user_key("bob", kCtxO2O), sealed).has_value());
}

TEST(E2E, DistinctContextsDistinctKeys) {
  std::string sealed = seal_body(user_key("alice", kCtxO2O), 1, "secret");
  EXPECT_FALSE(open_body(user_key("alice", kCtxGroup), sealed).has_value());
}

TEST(E2E, NonHexBodyRejected) {
  EXPECT_FALSE(open_body(user_key("a", kCtxO2O), "zz-not-hex").has_value());
}

// --- EActors service end-to-end ---------------------------------------------------

class XmppServiceTest : public ::testing::Test {
 protected:
  XmppServiceTest() {
    sgxsim::cost_model().ecall_cycles = 100;
    sgxsim::cost_model().ocall_cycles = 100;
  }
  sgxsim::ScopedCostModel scoped_;
};

core::RuntimeOptions service_runtime_options() {
  core::RuntimeOptions options;
  options.pool_nodes = 2048;
  options.node_payload_bytes = 2048;
  return options;
}

TEST_F(XmppServiceTest, O2OChatRoundTrip) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 1;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice, bob;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));

  ASSERT_TRUE(alice.send_chat("bob", "hi bob, e2e!"));
  auto msg = bob.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, "chat");
  EXPECT_EQ(msg->from, "alice");
  EXPECT_TRUE(msg->decrypt_ok);
  EXPECT_EQ(msg->body, "hi bob, e2e!");
  rt.stop();
}

TEST_F(XmppServiceTest, O2OAcrossInstances) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 2;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  // Round-robin assignment puts consecutive connections on different
  // instances, forcing the cross-instance routing path.
  Client alice, bob;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));

  ASSERT_TRUE(alice.send_chat("bob", "cross-instance"));
  auto msg = bob.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "cross-instance");

  ASSERT_TRUE(bob.send_chat("alice", "and back"));
  auto reply = alice.recv(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->body, "and back");
  rt.stop();
}

TEST_F(XmppServiceTest, GroupChatFanOut) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 2;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  constexpr int kMembers = 4;
  std::vector<std::unique_ptr<Client>> members;
  for (int i = 0; i < kMembers; ++i) {
    auto c = std::make_unique<Client>();
    ASSERT_TRUE(c->connect(service.port, "user" + std::to_string(i)));
    ASSERT_TRUE(c->join_room("room1"));
    members.push_back(std::move(c));
  }

  ASSERT_TRUE(members[0]->send_groupchat("room1", "hello group"));
  for (int i = 0; i < kMembers; ++i) {
    auto msg = members[static_cast<std::size_t>(i)]->recv(5000);
    ASSERT_TRUE(msg.has_value()) << "member " << i;
    EXPECT_EQ(msg->kind, "groupchat");
    EXPECT_TRUE(msg->decrypt_ok) << "member " << i;
    EXPECT_EQ(msg->body, "hello group");
    EXPECT_EQ(msg->from, "room1/user0");
  }
  rt.stop();
}

TEST_F(XmppServiceTest, UntrustedDeploymentBehavesIdentically) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 1;
  config.trusted = false;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice, bob;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  ASSERT_TRUE(alice.send_chat("bob", "works untrusted"));
  auto msg = bob.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "works untrusted");
  rt.stop();
}

TEST_F(XmppServiceTest, UnknownRecipientYieldsError) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(alice.send_chat("nobody", "hello?"));
  auto msg = alice.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, "stream:error");
  rt.stop();
}

TEST_F(XmppServiceTest, UnauthedMessageRejected) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  // Hand-rolled client that skips auth.
  net::Socket raw = net::Socket::connect_to("127.0.0.1", service.port);
  ASSERT_TRUE(raw.valid());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::string wire =
      make_stream_open("x") + make_chat_message("a", "b", "sneak");
  std::size_t sent = 0;
  while (sent < wire.size()) {
    long n = raw.write_nb(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(wire.data()) + sent,
        wire.size() - sent));
    ASSERT_GE(n, 0);
    sent += static_cast<std::size_t>(n);
    if (n == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Expect a not-authorized error back.
  std::string response;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         response.find("not-authorized") == std::string::npos) {
    std::uint8_t buf[512];
    long n = raw.read_nb(buf);
    if (n > 0) response.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(response.find("not-authorized"), std::string::npos);
  rt.stop();
}

TEST_F(XmppServiceTest, GroupChatAcrossEnclavesUsesEncryptedTransfers) {
  // With one instance per enclave and a 4-member group, transfers from
  // non-owner instances travel sealed through untrusted node memory; the
  // message must still arrive intact at every member.
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 3;
  config.enclaves = 3;
  XmppService service = install_xmpp_service(rt, config);
  // Sanity: with 3 distinct enclaves there are attested pair keys.
  EXPECT_GE(service.shared->enclave_pair_keys.size(), 3u);
  rt.start();

  std::vector<std::unique_ptr<Client>> members;
  for (int i = 0; i < 4; ++i) {
    auto c = std::make_unique<Client>();
    ASSERT_TRUE(c->connect(service.port, "enc-user" + std::to_string(i)));
    ASSERT_TRUE(c->join_room("enc-room"));
    members.push_back(std::move(c));
  }
  // Every member sends once, so at least two senders sit on non-owner
  // instances and exercise the sealed-transfer path.
  for (int sender = 0; sender < 4; ++sender) {
    ASSERT_TRUE(members[static_cast<std::size_t>(sender)]->send_groupchat(
        "enc-room", "msg-" + std::to_string(sender)));
    for (int i = 0; i < 4; ++i) {
      auto msg = members[static_cast<std::size_t>(i)]->recv(5000);
      ASSERT_TRUE(msg.has_value()) << "sender " << sender << " member " << i;
      EXPECT_EQ(msg->body, "msg-" + std::to_string(sender));
      EXPECT_TRUE(msg->decrypt_ok);
    }
  }
  rt.stop();
}

TEST_F(XmppServiceTest, SingleEnclavePackingUsesPlainTransfers) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 3;
  config.enclaves = 1;  // all instances share one enclave
  XmppService service = install_xmpp_service(rt, config);
  EXPECT_TRUE(service.shared->enclave_pair_keys.empty());
  EXPECT_EQ(service.shared->transfer_key(0, 2), nullptr);
  rt.stop();
}

TEST_F(XmppServiceTest, OfflineMessagesDeliveredOnLogin) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 1;
  config.offline_messages = true;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  // bob is not connected: the messages are spooled, not bounced.
  ASSERT_TRUE(alice.send_chat("bob", "first while offline"));
  ASSERT_TRUE(alice.send_chat("bob", "second while offline"));
  // No error should come back to alice.
  auto err = alice.recv(300);
  EXPECT_FALSE(err.has_value()) << err->kind;

  Client bob;
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  auto first = bob.recv(5000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body, "first while offline");
  EXPECT_EQ(first->from, "alice");
  auto second = bob.recv(5000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "second while offline");

  // The spool is drained: nothing more arrives.
  EXPECT_FALSE(bob.recv(300).has_value());
  rt.stop();
}

TEST_F(XmppServiceTest, OfflineSpoolIsEncryptedAtRest) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 1;
  config.offline_messages = true;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(alice.send_chat("bob", "spooled"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The raw POS must not contain the plaintext spool keys.
  pos::Pos& raw = *service.shared->offline_pos;
  EXPECT_FALSE(raw.get(util::to_bytes("offcnt:bob")).has_value());
  EXPECT_FALSE(raw.get(util::to_bytes("off:bob:0")).has_value());
  // But the encrypted view has exactly one message for bob.
  auto count = service.shared->offline_store->get(util::to_bytes("offcnt:bob"));
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(util::load_le32(count->data()), 1u);
  rt.stop();
}

TEST_F(XmppServiceTest, OfflineDisabledStillBouncesUnknownUsers) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 1;
  config.offline_messages = false;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();
  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(alice.send_chat("bob", "hello?"));
  auto err = alice.recv(5000);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, "stream:error");
  rt.stop();
}


TEST_F(XmppServiceTest, RosterPresenceNotifications) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  config.instances = 2;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client bob;
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  // alice is offline: the immediate status says so.
  auto status = bob.add_contact("alice");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, "unavailable");

  // alice connects: bob is notified.
  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  auto note = bob.recv(5000);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->kind, "presence");
  EXPECT_EQ(note->from, "alice");
  EXPECT_EQ(note->body, "available");

  // alice disconnects: bob is notified again.
  alice.close();
  note = bob.recv(5000);
  ASSERT_TRUE(note.has_value());
  EXPECT_EQ(note->kind, "presence");
  EXPECT_EQ(note->from, "alice");
  EXPECT_EQ(note->body, "unavailable");
  rt.stop();
}

TEST_F(XmppServiceTest, RosterImmediateStatusForOnlineContact) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client alice, bob;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  auto status = bob.add_contact("alice");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, "available");
  rt.stop();
}

TEST_F(XmppServiceTest, NonWatchersGetNoPresence) {
  core::Runtime rt(service_runtime_options());
  XmppServiceConfig config;
  XmppService service = install_xmpp_service(rt, config);
  rt.start();

  Client bob;
  ASSERT_TRUE(bob.connect(service.port, "bob"));
  // bob never subscribed; alice's connect must not notify him.
  Client alice;
  ASSERT_TRUE(alice.connect(service.port, "alice"));
  EXPECT_FALSE(bob.recv(300).has_value());
  rt.stop();
}

// --- baseline servers --------------------------------------------------------------

class BaselineTest : public ::testing::TestWithParam<BaselineFlavor> {};

TEST_P(BaselineTest, O2OChatRoundTrip) {
  BaselineOptions options;
  options.flavor = GetParam();
  BaselineServer server(options);
  server.start();

  Client alice, bob;
  ASSERT_TRUE(alice.connect(server.port(), "alice"));
  ASSERT_TRUE(bob.connect(server.port(), "bob"));
  ASSERT_TRUE(alice.send_chat("bob", "baseline hello"));
  auto msg = bob.recv(5000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "baseline hello");
  // The routed counter is bumped after the socket write; give the server
  // thread a moment to get there.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server.messages_routed() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.messages_routed(), 1u);
  server.stop();
}

TEST_P(BaselineTest, GroupChatFanOut) {
  BaselineOptions options;
  options.flavor = GetParam();
  BaselineServer server(options);
  server.start();

  Client a, b, c;
  ASSERT_TRUE(a.connect(server.port(), "a"));
  ASSERT_TRUE(b.connect(server.port(), "b"));
  ASSERT_TRUE(c.connect(server.port(), "c"));
  ASSERT_TRUE(a.join_room("room"));
  ASSERT_TRUE(b.join_room("room"));
  ASSERT_TRUE(c.join_room("room"));

  ASSERT_TRUE(b.send_groupchat("room", "to everyone"));
  for (Client* client : {&a, &b, &c}) {
    auto msg = client->recv(5000);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->body, "to everyone");
    EXPECT_EQ(msg->from, "room/b");
  }
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Flavors, BaselineTest,
                         ::testing::Values(BaselineFlavor::kJabberd2,
                                           BaselineFlavor::kEjabberd));

}  // namespace
}  // namespace ea::xmpp
