#!/usr/bin/env python3
"""Enclave-safety lint for the EActors runtime.

Enforces the framework invariants from the paper (EActors, Middleware '18):
actors running inside an enclave must never block or exit the enclave on the
message path. Concretely, trusted-capable modules may not use OS mutexes,
blocking syscalls, dynamic heap allocation (outside designated construction
paths), or iostream; and POD structs copied into node payloads (which cross
the enclave boundary through Channels) must not smuggle raw pointers.

The per-module policy lives in tools/enclave_policy.toml. Files can carry
inline waivers:

    ... offending code ...        // ea-lint: allow(rule-name) -- reason
    // ea-lint: allow-next-line(rule-name) -- reason
    // ea-lint: allow-file(rule-name) -- reason   (within the first 15 lines)

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.

Self-test mode (`--self-test`) runs the lint over tools/lint_fixtures/ and
checks that every `// EXPECT: rule-name` annotation fires on exactly that
line and that nothing else fires.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

WAIVER_LINE = re.compile(r"//\s*ea-lint:\s*allow\(([\w\-, ]+)\)")
WAIVER_NEXT = re.compile(r"//\s*ea-lint:\s*allow-next-line\(([\w\-, ]+)\)")
WAIVER_FILE = re.compile(r"//\s*ea-lint:\s*allow-file\(([\w\-, ]+)\)")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w\-]+)")

# sizeof(T) on a line that also touches a node payload — T is (heuristically)
# a type whose bytes cross the enclave boundary inside a node.
PAYLOAD_SIZEOF = re.compile(r"sizeof\((\w+)\)")
STRUCT_OPEN = re.compile(r"^\s*struct\s+(\w+)\b[^;]*$")
POINTER_MEMBER = re.compile(
    r"^\s*(?:const\s+)?[\w:<>,\s]+?[*&]\s*\w+\s*(?:=[^;]*)?;"
)
FUNC_DECL_HINT = re.compile(r"\(|\boperator\b")


@dataclass
class Rule:
    name: str
    description: str
    patterns: list[re.Pattern] = field(default_factory=list)


@dataclass
class Violation:
    path: Path
    line: int
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root.parent)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Policy:
    trusted_modules: list[str]
    untrusted_modules: list[str]
    rules: dict[str, Rule]
    # list of (path glob, set of rule names or {"*"}, reason)
    exemptions: list[tuple[str, set[str], str]]

    @staticmethod
    def load(path: Path) -> "Policy":
        with open(path, "rb") as f:
            raw = tomllib.load(f)
        modules = raw.get("modules", {})
        rules: dict[str, Rule] = {}
        for name, spec in raw.get("rules", {}).items():
            patterns = [re.compile(p) for p in spec.get("patterns", [])]
            rules[name] = Rule(name, spec.get("description", ""), patterns)
        exemptions = []
        for ex in raw.get("exempt", []):
            if "reason" not in ex:
                raise SystemExit(
                    f"policy error: exemption for {ex.get('path')} lacks a reason"
                )
            exemptions.append(
                (ex["path"], set(ex.get("rules", ["*"])), ex["reason"])
            )
        return Policy(
            trusted_modules=modules.get("trusted", []),
            untrusted_modules=modules.get("untrusted", []),
            rules=rules,
            exemptions=exemptions,
        )

    def exempt(self, rel: str, rule: str) -> bool:
        for glob, rule_set, _reason in self.exemptions:
            if fnmatch.fnmatch(rel, glob) and ("*" in rule_set or rule in rule_set):
                return True
        return False


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns lines with comments and string/char literals blanked out,
    preserving line numbering so diagnostics stay accurate."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                buf.append(quote)
                i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def collect_payload_types(files: list[Path]) -> set[str]:
    """Type names T appearing as sizeof(T) on lines that also touch a node
    payload — their bytes are serialized across the enclave boundary."""
    types: set[str] = set()
    for path in files:
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            if "payload()" not in line and "payload_bytes" not in line:
                continue
            for m in PAYLOAD_SIZEOF.finditer(line):
                name = m.group(1)
                if len(name) > 2:  # skip template params like T, U
                    types.add(name)
    return types


def check_payload_structs(
    path: Path, stripped: list[str], payload_types: set[str]
) -> list[Violation]:
    """Flags raw pointer/reference members inside structs whose bytes are
    copied into node payloads (bypassing Node/Channel ownership)."""
    violations = []
    i = 0
    n = len(stripped)
    while i < n:
        m = STRUCT_OPEN.match(stripped[i])
        if not m or m.group(1) not in payload_types:
            i += 1
            continue
        name = m.group(1)
        # Walk the struct body tracking brace depth.
        depth = 0
        seen_open = False
        j = i
        while j < n:
            line = stripped[j]
            if seen_open and depth >= 1 and j > i:
                if POINTER_MEMBER.match(line) and not FUNC_DECL_HINT.search(line):
                    violations.append(
                        Violation(
                            path,
                            j + 1,
                            "payload-raw-pointer",
                            f"struct {name} is copied into node payloads but "
                            f"this member holds a raw pointer/reference; "
                            f"pointers must not cross the enclave boundary — "
                            f"pass ids or inline bytes instead",
                        )
                    )
            if "{" in line:
                seen_open = True
            depth += line.count("{") - line.count("}")
            if seen_open and depth <= 0:
                break
            if not seen_open and j > i + 1:
                break  # forward declaration or unrelated match
            j += 1
        i = j + 1
    return violations


def waived_rules(line: str) -> set[str]:
    m = WAIVER_LINE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def lint_file(
    path: Path, rel: str, policy: Policy, payload_types: set[str]
) -> tuple[list[Violation], int]:
    try:
        raw_lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        print(f"warning: cannot read {path}: {e}", file=sys.stderr)
        return [], 0
    stripped = strip_comments_and_strings(raw_lines)

    file_waivers: set[str] = set()
    for line in raw_lines[:15]:
        m = WAIVER_FILE.search(line)
        if m:
            file_waivers |= {r.strip() for r in m.group(1).split(",")}

    violations: list[Violation] = []
    waiver_count = 0
    pending_next: set[str] = set()
    for idx, (raw, code) in enumerate(zip(raw_lines, stripped)):
        lineno = idx + 1
        line_waivers = waived_rules(raw) | pending_next | file_waivers
        pending_next = set()
        m = WAIVER_NEXT.search(raw)
        if m:
            pending_next = {r.strip() for r in m.group(1).split(",")}
            continue
        for rule in policy.rules.values():
            if policy.exempt(rel, rule.name):
                continue
            for pat in rule.patterns:
                pm = pat.search(code)
                if not pm:
                    continue
                if rule.name in line_waivers:
                    waiver_count += 1
                    break
                violations.append(
                    Violation(
                        path,
                        lineno,
                        rule.name,
                        f"`{pm.group(0).strip()}` — {rule.description}",
                    )
                )
                break  # one diagnostic per rule per line

    if not policy.exempt(rel, "payload-raw-pointer"):
        for v in check_payload_structs(path, stripped, payload_types):
            if "payload-raw-pointer" in file_waivers or "payload-raw-pointer" in waived_rules(
                raw_lines[v.line - 1]
            ):
                waiver_count += 1
                continue
            violations.append(v)
    return violations, waiver_count


def run_lint(root: Path, policy: Policy) -> tuple[list[Violation], int]:
    files = sorted(
        p
        for p in root.rglob("*")
        if p.suffix in SOURCE_SUFFIXES and p.is_file()
    )
    payload_types = collect_payload_types(files)
    all_violations: list[Violation] = []
    total_waivers = 0
    for path in files:
        rel = path.relative_to(root).as_posix()
        module = rel.split("/", 1)[0]
        if module in policy.untrusted_modules:
            continue
        if policy.trusted_modules and module not in policy.trusted_modules:
            continue
        vs, waivers = lint_file(path, rel, policy, payload_types)
        all_violations.extend(vs)
        total_waivers += waivers
    return all_violations, total_waivers


def self_test(tools_dir: Path) -> int:
    fixtures = tools_dir / "lint_fixtures"
    policy = Policy.load(fixtures / "policy.toml")
    root = fixtures / "src"
    violations, _ = run_lint(root, policy)
    got = {(v.path.relative_to(root).as_posix(), v.line, v.rule) for v in violations}

    expected: set[tuple[str, int, str]] = set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root).as_posix()
        for idx, line in enumerate(path.read_text().splitlines()):
            for m in EXPECT_RE.finditer(line):
                expected.add((rel, idx + 1, m.group(1)))

    ok = True
    for miss in sorted(expected - got):
        print(f"SELF-TEST FAIL: expected violation did not fire: {miss}")
        ok = False
    for extra in sorted(got - expected):
        print(f"SELF-TEST FAIL: unexpected violation: {extra}")
        ok = False
    if not expected:
        print("SELF-TEST FAIL: no EXPECT annotations found in fixtures")
        ok = False
    if ok:
        print(
            f"self-test OK: {len(expected)} seeded violations fired, "
            f"no false positives"
        )
        return 0
    return 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    tools_dir = Path(__file__).resolve().parent
    ap.add_argument("--root", type=Path, default=tools_dir.parent / "src")
    ap.add_argument(
        "--policy", type=Path, default=tools_dir / "enclave_policy.toml"
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(tools_dir)

    if not args.root.is_dir():
        print(f"error: source root {args.root} not found", file=sys.stderr)
        return 2
    try:
        policy = Policy.load(args.policy)
    except FileNotFoundError:
        print(f"error: policy file {args.policy} not found", file=sys.stderr)
        return 2
    except tomllib.TOMLDecodeError as e:
        print(f"error: policy file {args.policy}: {e}", file=sys.stderr)
        return 2
    violations, waivers = run_lint(args.root, policy)
    for v in violations:
        print(v.render(args.root))
    if violations:
        print(
            f"\nenclave-lint: {len(violations)} violation(s) "
            f"({waivers} inline waiver(s) honoured)"
        )
        return 1
    print(f"enclave-lint: clean ({waivers} inline waiver(s) honoured)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
