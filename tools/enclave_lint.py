#!/usr/bin/env python3
"""Enclave-safety lint for the EActors runtime (v2).

Enforces the framework invariants from the paper (EActors, Middleware '18):
actors running inside an enclave must never block or exit the enclave on the
message path. Concretely, trusted-capable modules may not use OS mutexes,
blocking syscalls, dynamic heap allocation (outside designated construction
paths), or iostream; and POD structs copied into node payloads (which cross
the enclave boundary through Channels) must not smuggle raw pointers.

v2 adds the concurrency-correctness passes (DESIGN.md §13):

  * lock-order-cycle — extracts guard-nesting pairs (HleGuard /
    HostMutexGuard, both lexical nesting and one level of calls into
    lock-taking functions) across the WHOLE tree, builds the lock graph,
    and fails on any cycle: a cycle is a deadlock two threads can reach
    even though every individual function looks locally reasonable.
  * tsa-unjustified — every EA_NO_THREAD_SAFETY_ANALYSIS opt-out must
    carry an inline `// tsa: <reason>` on the same or preceding line;
    silencing the thread-safety analysis without saying why is how
    lock-free "fast paths" rot into races.
  * epoch-pairing — epoch_enter/epoch_leave calls must balance within a
    function body (DESIGN.md §15): a path that announces an epoch and
    returns without leaving pins the global epoch and stalls POS
    reclamation forever. The RAII Section halves carry inline waivers.
  * seal-plaintext-zeroize — a function that calls into the sealing layer
    (seal/unseal/seal_with_counter/open_framed) and declares util::Bytes
    locals must secure_zero() before release (DESIGN.md §17): those locals
    hold sealed-bundle plaintext (exported actor state) staged in
    untrusted memory during a migration.

The per-module policy lives in tools/enclave_policy.toml. Files can carry
inline waivers:

    ... offending code ...        // ea-lint: allow(rule-name) -- reason
    // ea-lint: allow-next-line(rule-name) -- reason
    // ea-lint: allow-file(rule-name) -- reason   (within the first 15 lines)

Scan performance: `--jobs N` fans the per-file scan out over a process
pool, and an mtime/size cache under build/ skips re-scanning files that
have not changed since the previous run (`--no-cache` disables it; the
self-test never uses it).

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.

Self-test mode (`--self-test`) runs the lint over tools/lint_fixtures/ and
checks that every `// EXPECT: rule-name` annotation fires on exactly that
line and that nothing else fires.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import multiprocessing
import os
import re
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

WAIVER_LINE = re.compile(r"//\s*ea-lint:\s*allow\(([\w\-, ]+)\)")
WAIVER_NEXT = re.compile(r"//\s*ea-lint:\s*allow-next-line\(([\w\-, ]+)\)")
WAIVER_FILE = re.compile(r"//\s*ea-lint:\s*allow-file\(([\w\-, ]+)\)")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w\-]+)")

# sizeof(T) on a line that also touches a node payload — T is (heuristically)
# a type whose bytes cross the enclave boundary inside a node.
PAYLOAD_SIZEOF = re.compile(r"sizeof\((\w+)\)")
STRUCT_OPEN = re.compile(r"^\s*struct\s+(\w+)\b[^;]*$")
POINTER_MEMBER = re.compile(
    r"^\s*(?:const\s+)?[\w:<>,\s]+?[*&]\s*\w+\s*(?:=[^;]*)?;"
)
FUNC_DECL_HINT = re.compile(r"\(|\boperator\b")

# --- lock-graph extraction (rule: lock-order-cycle) -------------------------

# `HleGuard g(expr);` / `HostMutexGuard g(expr);` — optionally qualified.
GUARD_DECL = re.compile(
    r"\b(?:[\w:]+::)?(?:HleGuard|HostMutexGuard)\s+\w+\s*[({]\s*"
    r"([^(){};]+?)\s*[)}]"
)
# Candidate function-definition name: last identifier before a '(' on a
# line that later opens a brace without terminating in ';'.
CALL_OR_DEF = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NTSA_TOKEN = re.compile(r"\bEA_NO_THREAD_SAFETY_ANALYSIS\b")
TSA_JUSTIFY = re.compile(r"//.*\btsa:\s*\S")

# Epoch-pairing (rule `epoch-pairing`): calls to the POS epoch API, the
# declaration/definition shape to skip, and a function-body opener
# (`) ... {`, excluding control-flow headers).
EPOCH_CALL = re.compile(r"\b(epoch_enter|epoch_leave)\s*\(")
EPOCH_DECL = re.compile(
    r"\bvoid\s+(?:[A-Za-z_]\w*::)*(?:epoch_enter|epoch_leave)\s*\("
)

# Sealed-bundle hygiene (rule `seal-plaintext-zeroize`): a function that
# moves state through the SEALING layer (sgxsim::seal/unseal — migration
# bundles, sealed master keys) and owns byte buffers must wipe them before
# release (DESIGN.md §17 — sealed-state plaintext in untrusted memory
# outlives the enclave it came from). The channel AEAD helpers
# (seal_with_counter/open_framed) are deliberately out of scope: their
# plaintext is in-flight message payload owned by the node lifecycle, not
# an at-rest state bundle.
SEAL_CALL = re.compile(r"\b(unseal|seal)\s*\(")
SEAL_DECL = re.compile(
    r"\b(?!return\b|throw\b)[A-Za-z_][\w:<>]*\s+"
    r"(?:[A-Za-z_]\w*::)*(?:unseal|seal)\s*\("
)
BYTES_LOCAL = re.compile(r"\b(?:util::)?Bytes\s+\w+\s*[;({=]")
SECURE_ZERO = re.compile(r"\bsecure_zero\s*\(")
FUNC_OPEN = re.compile(r"\)\s*(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+)?\{")
CONTROL_HEAD = re.compile(r"^\s*(?:\}?\s*)?(?:if|for|while|switch|catch)\b")

# Control keywords that look like calls but are not.
CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "catch", "throw", "new", "delete", "static_assert",
    "decltype", "noexcept", "defined", "assert", "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast",
}
# Names too generic to resolve to a unique definition: calls to these are
# never used for interprocedural lock-edge propagation (a `push` holding a
# mbox lock must not inherit the locks of every `push` in the tree).
GENERIC_NAMES = {
    "push", "pop", "get", "set", "put", "add", "size", "empty", "with",
    "lock", "unlock", "body", "find", "close", "open", "begin", "end",
    "count", "data", "next", "reset", "clear", "insert", "erase",
    "emplace", "load", "store", "read", "write", "send", "recv", "tick",
    "run", "stop", "start", "join", "main", "name", "wait", "post",
    "push_back", "pop_back", "emplace_back", "append", "assign", "swap",
    "front", "back", "test", "value", "fetch_add", "fetch_sub", "exchange",
    "compare_exchange_weak", "compare_exchange_strong", "c_str", "str",
}
MIN_CALLEE_LEN = 4


@dataclass
class Rule:
    name: str
    description: str
    patterns: list[re.Pattern] = field(default_factory=list)


@dataclass
class Violation:
    path: Path
    line: int
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root.parent)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class LockExtract:
    """Per-file facts feeding the global lock-order-cycle pass.

    Lock identity is `<module>/<filestem>:<member>` with array indexes
    stripped, so `free_locks_[s]` and `free_locks_[t]` are one lock family
    (matching the rank table, where same-rank nesting is forbidden anyway).
    """

    # function name -> sorted list of lock ids it acquires directly
    func_locks: dict[str, list[str]] = field(default_factory=dict)
    # (outer lock id, inner lock id, line of the inner acquisition)
    lexical_edges: list[tuple[str, str, int]] = field(default_factory=list)
    # (callee name, line, held lock ids at the call site)
    guarded_calls: list[tuple[str, int, list[str]]] = field(
        default_factory=list
    )
    # function name -> callee names invoked anywhere inside it
    func_calls: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class FileScan:
    """Everything lint_file() learns about one file (cacheable)."""

    violations: list[Violation] = field(default_factory=list)
    waiver_count: int = 0
    extract: LockExtract = field(default_factory=LockExtract)


@dataclass
class Policy:
    trusted_modules: list[str]
    untrusted_modules: list[str]
    rules: dict[str, Rule]
    # list of (path glob, set of rule names or {"*"}, reason)
    exemptions: list[tuple[str, set[str], str]]

    @staticmethod
    def load(path: Path) -> "Policy":
        with open(path, "rb") as f:
            raw = tomllib.load(f)
        modules = raw.get("modules", {})
        rules: dict[str, Rule] = {}
        for name, spec in raw.get("rules", {}).items():
            patterns = [re.compile(p) for p in spec.get("patterns", [])]
            rules[name] = Rule(name, spec.get("description", ""), patterns)
        exemptions = []
        for ex in raw.get("exempt", []):
            if "reason" not in ex:
                raise SystemExit(
                    f"policy error: exemption for {ex.get('path')} lacks a reason"
                )
            exemptions.append(
                (ex["path"], set(ex.get("rules", ["*"])), ex["reason"])
            )
        return Policy(
            trusted_modules=modules.get("trusted", []),
            untrusted_modules=modules.get("untrusted", []),
            rules=rules,
            exemptions=exemptions,
        )

    def exempt(self, rel: str, rule: str) -> bool:
        for glob, rule_set, _reason in self.exemptions:
            if fnmatch.fnmatch(rel, glob) and ("*" in rule_set or rule in rule_set):
                return True
        return False


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns lines with comments and string/char literals blanked out,
    preserving line numbering so diagnostics stay accurate."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                buf.append(quote)
                i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def collect_payload_types(files: list[Path]) -> set[str]:
    """Type names T appearing as sizeof(T) on lines that also touch a node
    payload — their bytes are serialized across the enclave boundary."""
    types: set[str] = set()
    for path in files:
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            if "payload()" not in line and "payload_bytes" not in line:
                continue
            for m in PAYLOAD_SIZEOF.finditer(line):
                name = m.group(1)
                if len(name) > 2:  # skip template params like T, U
                    types.add(name)
    return types


def check_payload_structs(
    path: Path, stripped: list[str], payload_types: set[str]
) -> list[Violation]:
    """Flags raw pointer/reference members inside structs whose bytes are
    copied into node payloads (bypassing Node/Channel ownership)."""
    violations = []
    i = 0
    n = len(stripped)
    while i < n:
        m = STRUCT_OPEN.match(stripped[i])
        if not m or m.group(1) not in payload_types:
            i += 1
            continue
        name = m.group(1)
        # Walk the struct body tracking brace depth.
        depth = 0
        seen_open = False
        j = i
        while j < n:
            line = stripped[j]
            if seen_open and depth >= 1 and j > i:
                if POINTER_MEMBER.match(line) and not FUNC_DECL_HINT.search(line):
                    violations.append(
                        Violation(
                            path,
                            j + 1,
                            "payload-raw-pointer",
                            f"struct {name} is copied into node payloads but "
                            f"this member holds a raw pointer/reference; "
                            f"pointers must not cross the enclave boundary — "
                            f"pass ids or inline bytes instead",
                        )
                    )
            if "{" in line:
                seen_open = True
            depth += line.count("{") - line.count("}")
            if seen_open and depth <= 0:
                break
            if not seen_open and j > i + 1:
                break  # forward declaration or unrelated match
            j += 1
        i = j + 1
    return violations


def lock_id(rel: str, expr: str) -> str:
    """Normalises a guard-constructor expression to a lock identity.

    `free_locks_[s]` -> `pos/pos:free_locks_`; `shared.offline_lock` ->
    `<file>:offline_lock`. Member locks are keyed by the file declaring the
    guard use — the runtime has no two same-named locks in one file.
    """
    expr = re.sub(r"\[[^\]]*\]", "", expr)  # strip array indexes
    expr = expr.strip().rstrip("*&")
    # Last component of a member access chain.
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    expr = expr.strip().lstrip(":")
    stem = rel.rsplit(".", 1)[0]
    return f"{stem}:{expr}"


def check_tsa_justifications(
    path: Path, rel: str, raw_lines: list[str], stripped: list[str]
) -> list[Violation]:
    """Rule `tsa-unjustified`: every EA_NO_THREAD_SAFETY_ANALYSIS use needs
    an inline `// tsa: <reason>` on the same or the preceding line."""
    violations = []
    for idx, code in enumerate(stripped):
        if not NTSA_TOKEN.search(code):
            continue
        if code.lstrip().startswith("#"):  # the macro's own definition
            continue
        here = TSA_JUSTIFY.search(raw_lines[idx])
        above = idx > 0 and TSA_JUSTIFY.search(raw_lines[idx - 1])
        if not here and not above:
            violations.append(
                Violation(
                    path,
                    idx + 1,
                    "tsa-unjustified",
                    "EA_NO_THREAD_SAFETY_ANALYSIS without an inline "
                    "`// tsa: <reason>` justification (same or previous "
                    "line); opting out of the thread-safety analysis "
                    "silently is forbidden (DESIGN.md §13)",
                )
            )
    return violations


def check_epoch_pairing(path: Path, stripped: list[str]) -> list[Violation]:
    """Rule `epoch-pairing`: within one function body, `epoch_enter` and
    `epoch_leave` calls must balance.

    An entry point that announces an epoch and returns without leaving pins
    the global epoch forever — the cleaner can never advance past it and
    retired entries are never freed. Deliberately unbalanced halves (the
    RAII Section constructor/destructor) carry inline waivers.

    Heuristic function tracking: a body opens on `) ... {` (control-flow
    headers excluded) and closes when brace depth returns to its opening
    level; calls are attributed to the innermost open body, so a lambda's
    pairing is judged on its own.
    """
    violations: list[Violation] = []
    # Each frame: (close_depth, enter_lines, leave_lines).
    frames: list[tuple[int, list[int], list[int]]] = []
    depth = 0

    def judge(enters: list[int], leaves: list[int]) -> None:
        if len(enters) == len(leaves):
            return
        anchor = enters[0] if len(enters) > len(leaves) else leaves[0]
        what = (
            f"{len(enters)} epoch_enter vs {len(leaves)} epoch_leave"
        )
        violations.append(
            Violation(
                path,
                anchor,
                "epoch-pairing",
                f"unbalanced epoch section in this function body ({what}); "
                "a path that returns without leaving pins the global epoch "
                "and stalls POS reclamation — use Pos::Section (RAII) or "
                "balance every branch",
            )
        )

    for idx, code in enumerate(stripped):
        lineno = idx + 1
        if code.lstrip().startswith("#"):
            continue

        decl_spans = [m.span() for m in EPOCH_DECL.finditer(code)]
        calls: list[str] = []
        for m in EPOCH_CALL.finditer(code):
            if any(s <= m.start(1) < e for s, e in decl_spans):
                continue  # the API's own declaration/definition line
            calls.append(m.group(1))

        opens_func = bool(FUNC_OPEN.search(code)) and not CONTROL_HEAD.match(
            code
        )
        delta = code.count("{") - code.count("}")

        if opens_func and delta == 0 and "{" in code:
            # One-liner body (`~Section() { ...epoch_leave(); }`): judge
            # the line's calls directly, without touching the frame stack.
            judge(
                [lineno for c in calls if c == "epoch_enter"],
                [lineno for c in calls if c == "epoch_leave"],
            )
            continue

        if opens_func and delta > 0:
            frames.append((depth, [], []))

        if frames:
            close_depth, enters, leaves = frames[-1]
            for c in calls:
                (enters if c == "epoch_enter" else leaves).append(lineno)

        depth += delta
        while frames and depth <= frames[-1][0]:
            _, enters, leaves = frames.pop()
            judge(enters, leaves)

    for _, enters, leaves in frames:  # unterminated (truncated file)
        judge(enters, leaves)
    return violations


def check_seal_zeroize(path: Path, stripped: list[str]) -> list[Violation]:
    """Rule `seal-plaintext-zeroize`: a function body that calls into the
    sealing layer (`seal`/`unseal`/`seal_with_counter`/`open_framed`) and
    declares `util::Bytes` locals must contain at least one `secure_zero`
    call.

    Those locals hold sealed-bundle *plaintext* — exported actor state and
    POS partitions staged in untrusted memory during a migration. A return
    path that drops them unwiped leaves enclave secrets lying in host
    memory after the bundle is gone (DESIGN.md §17). Wiping through a
    helper lambda counts: facts are attributed to the outermost enclosing
    function, so `auto wipe = [&] { secure_zero(...); }` satisfies the
    rule for the whole body.
    """
    violations: list[Violation] = []
    frames: list[int] = []  # depth before each open function body
    depth = 0
    seal_lines: list[int] = []
    bytes_seen = False
    zero_seen = False

    def judge() -> None:
        nonlocal seal_lines, bytes_seen, zero_seen
        if seal_lines and bytes_seen and not zero_seen:
            violations.append(
                Violation(
                    path,
                    seal_lines[0],
                    "seal-plaintext-zeroize",
                    "this function stages sealed-bundle plaintext "
                    "(seal/unseal call plus util::Bytes locals) but never "
                    "secure_zero()s a buffer; every exit path must wipe "
                    "exported state before releasing it to untrusted "
                    "memory (DESIGN.md §17)",
                )
            )
        seal_lines, bytes_seen, zero_seen = [], False, False

    for idx, code in enumerate(stripped):
        lineno = idx + 1
        if code.lstrip().startswith("#"):
            continue
        opens_func = bool(FUNC_OPEN.search(code)) and not CONTROL_HEAD.match(
            code
        )
        delta = code.count("{") - code.count("}")
        if opens_func and delta > 0:
            frames.append(depth)
        if frames:
            decl_spans = [m.span() for m in SEAL_DECL.finditer(code)]
            for m in SEAL_CALL.finditer(code):
                if any(s <= m.start(1) < e for s, e in decl_spans):
                    continue  # declaration/definition of the API itself
                seal_lines.append(lineno)
            # A `Bytes` on the opener line is the return type, not a local.
            if not opens_func and BYTES_LOCAL.search(code):
                bytes_seen = True
            if SECURE_ZERO.search(code):
                zero_seen = True
        depth += delta
        while frames and depth <= frames[-1]:
            frames.pop()
            if not frames:
                judge()
    judge()  # unterminated (truncated file)
    return violations


def extract_lock_facts(rel: str, stripped: list[str]) -> LockExtract:
    """Single lexical pass: guard scopes, function contexts, call sites.

    Deliberately heuristic (this is a lint, not a compiler): function
    bodies are recognised by `name(...) ... {`, guard lifetimes by brace
    depth, and calls by `identifier(`. The heuristics are tuned so false
    *edges* (which could fabricate a cycle) are far less likely than false
    negatives: interprocedural propagation only follows calls to uniquely
    named, non-generic functions that demonstrably take guards.
    """
    ex = LockExtract()
    depth = 0
    # (lock id, depth at declaration); active at the current point.
    guard_stack: list[tuple[str, int]] = []
    # (function name, depth before its opening brace)
    func_stack: list[tuple[str, int]] = []
    pending_func: str | None = None

    for idx, code in enumerate(stripped):
        lineno = idx + 1
        if code.lstrip().startswith("#"):
            continue

        # New guards on this line first: record nesting edges against the
        # guards already active.
        line_guards: list[str] = []
        for m in GUARD_DECL.finditer(code):
            lid = lock_id(rel, m.group(1))
            for outer, _d in guard_stack:
                if outer != lid:
                    ex.lexical_edges.append((outer, lid, lineno))
            if func_stack:
                fname = func_stack[-1][0]
                locks = ex.func_locks.setdefault(fname, [])
                if lid not in locks:
                    locks.append(lid)
            line_guards.append(lid)

        # Call sites / function-definition candidates.
        for m in CALL_OR_DEF.finditer(code):
            name = m.group(1)
            if name in CPP_KEYWORDS or len(name) < MIN_CALLEE_LEN:
                continue
            if name in GENERIC_NAMES:
                continue
            if GUARD_DECL.search(code) and name in ("HleGuard",
                                                    "HostMutexGuard"):
                continue
            held = [g for g, _d in guard_stack]
            if held:
                ex.guarded_calls.append((name, lineno, held))
            if func_stack:
                fname = func_stack[-1][0]
                calls = ex.func_calls.setdefault(fname, [])
                if name not in calls:
                    calls.append(name)
            pending_func = name  # definition candidate if a '{' follows

        # Brace accounting; pop scopes as they close.
        opens = code.count("{")
        closes = code.count("}")
        if opens and pending_func is not None and ";" not in code.split("{")[0]:
            func_stack.append((pending_func, depth))
            pending_func = None
        depth += opens - closes
        if ";" in code and opens == 0:
            pending_func = None
        while guard_stack and guard_stack[-1][1] > depth:
            guard_stack.pop()
        while func_stack and func_stack[-1][1] >= depth and closes:
            func_stack.pop()
        # Guards declared on this line live at the *current* depth.
        for lid in line_guards:
            guard_stack.append((lid, depth))

    for locks in ex.func_locks.values():
        locks.sort()
    return ex


def detect_lock_cycles(
    scans: dict[str, FileScan], policy: Policy
) -> list[Violation]:
    """Builds the global lock graph and reports every edge inside a cycle.

    Edges come from (a) lexical guard nesting and (b) calls made while a
    guard is held into functions that (transitively, via same-kind calls)
    take guards — one conservative level of indirection, enough to see
    clean_step()'s limbo→free edge through shard_push_chain().
    """
    # Unique, lock-taking function table across the tree.
    defs: dict[str, list[str]] = {}
    ambiguous: set[str] = set()
    for scan in scans.values():
        for fname, locks in scan.extract.func_locks.items():
            if fname in defs and defs[fname] != locks:
                ambiguous.add(fname)
            else:
                defs.setdefault(fname, locks)
    calls: dict[str, list[str]] = {}
    for scan in scans.values():
        for fname, callees in scan.extract.func_calls.items():
            calls.setdefault(fname, []).extend(callees)

    # Transitive closure of acquired locks over the call graph (bounded
    # fixpoint; the graph is tiny).
    closure: dict[str, set[str]] = {
        f: set(locks) for f, locks in defs.items() if f not in ambiguous
    }
    for _ in range(8):
        changed = False
        for fname in list(closure):
            for callee in calls.get(fname, []):
                extra = closure.get(callee)
                if extra and not extra <= closure[fname]:
                    closure[fname] |= extra
                    changed = True
        if not changed:
            break

    # Edge set: (outer, inner) -> first (rel, line) witnessing it.
    edges: dict[tuple[str, str], tuple[str, int]] = {}

    def add_edge(outer: str, inner: str, rel: str, line: int) -> None:
        if outer == inner:
            return
        edges.setdefault((outer, inner), (rel, line))

    for rel, scan in sorted(scans.items()):
        for outer, inner, line in scan.extract.lexical_edges:
            add_edge(outer, inner, rel, line)
        for callee, line, held in scan.extract.guarded_calls:
            inner_locks = closure.get(callee)
            if not inner_locks:
                continue
            for outer in held:
                for inner in sorted(inner_locks):
                    add_edge(outer, inner, rel, line)

    # Cycle detection: iterative DFS over the edge graph.
    graph: dict[str, list[str]] = {}
    for (outer, inner) in edges:
        graph.setdefault(outer, []).append(inner)
        graph.setdefault(inner, [])
    for succs in graph.values():
        succs.sort()

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    violations: list[Violation] = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        cycle = " ↔ ".join(sorted(scc))
        for (outer, inner), (rel, line) in sorted(edges.items()):
            if outer in scc and inner in scc:
                if policy.exempt(rel, "lock-order-cycle"):
                    continue
                violations.append(
                    Violation(
                        Path(rel),
                        line,
                        "lock-order-cycle",
                        f"acquiring `{inner.split(':')[1]}` while holding "
                        f"`{outer.split(':')[1]}` closes a cycle in the "
                        f"lock graph [{cycle}]; two threads taking these "
                        f"locks in opposite orders can deadlock — fix the "
                        f"acquisition order (see the LockRank table, "
                        f"concurrent/lock_rank.hpp)",
                    )
                )
    return violations


def waived_rules(line: str) -> set[str]:
    m = WAIVER_LINE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def lint_file(
    path: Path, rel: str, policy: Policy, payload_types: set[str]
) -> FileScan:
    scan = FileScan()
    try:
        raw_lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        print(f"warning: cannot read {path}: {e}", file=sys.stderr)
        return scan
    stripped = strip_comments_and_strings(raw_lines)

    file_waivers: set[str] = set()
    for line in raw_lines[:15]:
        m = WAIVER_FILE.search(line)
        if m:
            file_waivers |= {r.strip() for r in m.group(1).split(",")}

    violations = scan.violations
    pending_next: set[str] = set()
    line_waiver_map: dict[int, set[str]] = {}
    for idx, (raw, code) in enumerate(zip(raw_lines, stripped)):
        lineno = idx + 1
        line_waivers = waived_rules(raw) | pending_next | file_waivers
        line_waiver_map[lineno] = line_waivers
        pending_next = set()
        m = WAIVER_NEXT.search(raw)
        if m:
            pending_next = {r.strip() for r in m.group(1).split(",")}
            continue
        for rule in policy.rules.values():
            if policy.exempt(rel, rule.name):
                continue
            for pat in rule.patterns:
                pm = pat.search(code)
                if not pm:
                    continue
                if rule.name in line_waivers:
                    scan.waiver_count += 1
                    break
                violations.append(
                    Violation(
                        path,
                        lineno,
                        rule.name,
                        f"`{pm.group(0).strip()}` — {rule.description}",
                    )
                )
                break  # one diagnostic per rule per line

    if not policy.exempt(rel, "payload-raw-pointer"):
        for v in check_payload_structs(path, stripped, payload_types):
            if "payload-raw-pointer" in file_waivers or "payload-raw-pointer" in waived_rules(
                raw_lines[v.line - 1]
            ):
                scan.waiver_count += 1
                continue
            violations.append(v)

    if not policy.exempt(rel, "tsa-unjustified"):
        for v in check_tsa_justifications(path, rel, raw_lines, stripped):
            if "tsa-unjustified" in line_waiver_map.get(v.line, set()):
                scan.waiver_count += 1
                continue
            violations.append(v)

    if not policy.exempt(rel, "epoch-pairing"):
        for v in check_epoch_pairing(path, stripped):
            if "epoch-pairing" in line_waiver_map.get(v.line, set()):
                scan.waiver_count += 1
                continue
            violations.append(v)

    if not policy.exempt(rel, "seal-plaintext-zeroize"):
        for v in check_seal_zeroize(path, stripped):
            if "seal-plaintext-zeroize" in line_waiver_map.get(
                v.line, set()
            ):
                scan.waiver_count += 1
                continue
            violations.append(v)

    # Lock facts are extracted for EVERY scanned file (trusted or not):
    # a deadlock between an untrusted guard and a trusted one is still a
    # deadlock.
    scan.extract = extract_lock_facts(rel, stripped)
    return scan


# --- scan cache (satellite: skip unchanged files) ---------------------------

CACHE_VERSION = 4


def scan_to_jsonable(scan: FileScan) -> dict:
    return {
        "violations": [
            [str(v.path), v.line, v.rule, v.message] for v in scan.violations
        ],
        "waivers": scan.waiver_count,
        "extract": {
            "func_locks": scan.extract.func_locks,
            "lexical_edges": scan.extract.lexical_edges,
            "guarded_calls": scan.extract.guarded_calls,
            "func_calls": scan.extract.func_calls,
        },
    }


def scan_from_jsonable(raw: dict) -> FileScan:
    scan = FileScan()
    scan.violations = [
        Violation(Path(p), line, rule, msg)
        for p, line, rule, msg in raw["violations"]
    ]
    scan.waiver_count = raw["waivers"]
    ex = raw["extract"]
    scan.extract = LockExtract(
        func_locks={k: list(v) for k, v in ex["func_locks"].items()},
        lexical_edges=[tuple(e) for e in ex["lexical_edges"]],
        guarded_calls=[
            (name, line, list(held)) for name, line, held in ex["guarded_calls"]
        ],
        func_calls={k: list(v) for k, v in ex["func_calls"].items()},
    )
    return scan


def load_cache(path: Path, policy_stamp: tuple[float, int]) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        if raw.get("version") != CACHE_VERSION:
            return {}
        if raw.get("policy_stamp") != list(policy_stamp):
            return {}
        return raw.get("files", {})
    except (OSError, ValueError):
        return {}


def save_cache(
    path: Path, policy_stamp: tuple[float, int], files: dict
) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "version": CACHE_VERSION,
                    "policy_stamp": list(policy_stamp),
                    "files": files,
                },
                f,
            )
        os.replace(tmp, path)
    except OSError as e:
        print(f"warning: cannot write lint cache {path}: {e}", file=sys.stderr)


# --- driving ----------------------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(policy_path: str, payload_types: set[str]) -> None:
    _WORKER_STATE["policy"] = Policy.load(Path(policy_path))
    _WORKER_STATE["payload_types"] = payload_types


def _worker_scan(item: tuple[str, str]) -> tuple[str, dict]:
    path_s, rel = item
    scan = lint_file(
        Path(path_s),
        rel,
        _WORKER_STATE["policy"],
        _WORKER_STATE["payload_types"],
    )
    return rel, scan_to_jsonable(scan)


def run_lint(
    root: Path,
    policy: Policy,
    policy_path: Path | None = None,
    jobs: int = 1,
    cache_path: Path | None = None,
) -> tuple[list[Violation], int]:
    files = sorted(
        p
        for p in root.rglob("*")
        if p.suffix in SOURCE_SUFFIXES and p.is_file()
    )
    payload_types = collect_payload_types(files)

    # Per-file scans, module-filtered like v1 for the regex rules — but the
    # lock pass needs every file, so untrusted modules are scanned too and
    # their regex rules suppressed via the module filter inside the loop.
    wanted: list[tuple[Path, str]] = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        module = rel.split("/", 1)[0]
        if module in policy.untrusted_modules:
            # Untrusted modules: lock facts + tsa discipline only. Regex
            # rules don't apply there (blocking on the host is fine).
            wanted.append((path, rel))
            continue
        if policy.trusted_modules and module not in policy.trusted_modules:
            continue
        wanted.append((path, rel))

    untrusted = set(policy.untrusted_modules)

    if cache_path is not None and policy_path is not None:
        try:
            st = policy_path.stat()
            policy_stamp = (st.st_mtime, st.st_size)
        except OSError:
            policy_stamp = (0.0, 0)
        cached = load_cache(cache_path, policy_stamp)
    else:
        policy_stamp = (0.0, 0)
        cached = {}

    fresh: dict[str, dict] = {}
    to_scan: list[tuple[str, str]] = []
    for path, rel in wanted:
        try:
            st = path.stat()
            stamp = [st.st_mtime, st.st_size]
        except OSError:
            stamp = [0.0, 0]
        entry = cached.get(rel)
        if entry is not None and entry.get("stamp") == stamp:
            fresh[rel] = entry
        else:
            to_scan.append((str(path), rel))

    scanned: dict[str, dict] = {}
    if to_scan:
        jobs = max(1, min(jobs, len(to_scan)))
        if jobs > 1 and policy_path is not None:
            with multiprocessing.Pool(
                jobs, _worker_init, (str(policy_path), payload_types)
            ) as pool:
                for rel, raw in pool.imap_unordered(_worker_scan, to_scan):
                    scanned[rel] = {"scan": raw}
        else:
            for path_s, rel in to_scan:
                scan = lint_file(Path(path_s), rel, policy, payload_types)
                scanned[rel] = {"scan": scan_to_jsonable(scan)}
        for path_s, rel in to_scan:
            try:
                st = Path(path_s).stat()
                scanned[rel]["stamp"] = [st.st_mtime, st.st_size]
            except OSError:
                scanned[rel]["stamp"] = [0.0, 0]

    all_entries = {**fresh, **scanned}
    if cache_path is not None and policy_path is not None:
        save_cache(cache_path, policy_stamp, all_entries)

    scans: dict[str, FileScan] = {
        rel: scan_from_jsonable(entry["scan"])
        for rel, entry in all_entries.items()
    }

    all_violations: list[Violation] = []
    total_waivers = 0
    for rel in sorted(scans):
        module = rel.split("/", 1)[0]
        scan = scans[rel]
        if module in untrusted:
            # Host-side modules keep only the concurrency-correctness rules
            # and the sealed-plaintext hygiene pass (host memory is exactly
            # where a leaked bundle would linger); the enclave regex rules
            # were never evaluated for them (v1 semantics preserved) — drop
            # anything else defensively.
            scan.violations = [
                v
                for v in scan.violations
                if v.rule in ("tsa-unjustified", "seal-plaintext-zeroize")
            ]
        all_violations.extend(scan.violations)
        total_waivers += scan.waiver_count

    for v in detect_lock_cycles(scans, policy):
        # Cycle diagnostics carry tree-relative paths; rebase onto root so
        # render() produces the same shape as other rules.
        v.path = root / v.path
        all_violations.append(v)

    all_violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
    return all_violations, total_waivers


def self_test(tools_dir: Path) -> int:
    fixtures = tools_dir / "lint_fixtures"
    policy = Policy.load(fixtures / "policy.toml")
    root = fixtures / "src"
    # Hermetic: no cache, in-process scan.
    violations, _ = run_lint(root, policy)
    got = {(v.path.relative_to(root).as_posix(), v.line, v.rule) for v in violations}

    expected: set[tuple[str, int, str]] = set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root).as_posix()
        for idx, line in enumerate(path.read_text().splitlines()):
            for m in EXPECT_RE.finditer(line):
                expected.add((rel, idx + 1, m.group(1)))

    ok = True
    for miss in sorted(expected - got):
        print(f"SELF-TEST FAIL: expected violation did not fire: {miss}")
        ok = False
    for extra in sorted(got - expected):
        print(f"SELF-TEST FAIL: unexpected violation: {extra}")
        ok = False
    if not expected:
        print("SELF-TEST FAIL: no EXPECT annotations found in fixtures")
        ok = False
    if ok:
        print(
            f"self-test OK: {len(expected)} seeded violations fired, "
            f"no false positives"
        )
        return 0
    return 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    tools_dir = Path(__file__).resolve().parent
    ap.add_argument("--root", type=Path, default=tools_dir.parent / "src")
    ap.add_argument(
        "--policy", type=Path, default=tools_dir / "enclave_policy.toml"
    )
    ap.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count() or 1,
        help="parallel scan processes (default: cpu count)",
    )
    ap.add_argument(
        "--cache",
        type=Path,
        default=tools_dir.parent / "build" / ".enclave_lint_cache.json",
        help="mtime cache path (default: build/.enclave_lint_cache.json)",
    )
    ap.add_argument(
        "--no-cache",
        action="store_true",
        help="rescan everything, touching no cache file",
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(tools_dir)

    if not args.root.is_dir():
        print(f"error: source root {args.root} not found", file=sys.stderr)
        return 2
    try:
        policy = Policy.load(args.policy)
    except FileNotFoundError:
        print(f"error: policy file {args.policy} not found", file=sys.stderr)
        return 2
    except tomllib.TOMLDecodeError as e:
        print(f"error: policy file {args.policy}: {e}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    violations, waivers = run_lint(
        args.root,
        policy,
        policy_path=args.policy,
        jobs=args.jobs,
        cache_path=None if args.no_cache else args.cache,
    )
    for v in violations:
        print(v.render(args.root))
    if violations:
        print(
            f"\nenclave-lint: {len(violations)} violation(s) "
            f"({waivers} inline waiver(s) honoured)"
        )
        return 1
    print(f"enclave-lint: clean ({waivers} inline waiver(s) honoured)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
