// Fixture: dynamic allocation on the message path.
#include <memory>

namespace fixture {

struct Node {
  char payload[64];
};

Node* fresh_node() {
  return new Node();  // EXPECT: heap-alloc
}

void* raw_buffer(unsigned long n) {
  return malloc(n);  // EXPECT: heap-alloc
}

std::unique_ptr<Node> owned() {
  return std::make_unique<Node>();  // EXPECT: heap-alloc
}

// Placement new into a preallocated arena is the sanctioned construction
// idiom and must NOT fire.
Node* placement_ok(void* slot) {
  return new (slot) Node();
}

}  // namespace fixture
