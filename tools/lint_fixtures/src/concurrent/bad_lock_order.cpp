// Fixture: lock-order-cycle. Two functions nest the same pair of locks in
// opposite orders — each is locally fine, but a thread in lock_table_first()
// racing a thread in lock_stats_first() can deadlock. The lint must extract
// both nesting edges, see the 2-cycle in the global lock graph, and report
// each inner acquisition.

namespace ea::concurrent {

struct BadLockOrder {
  void lock_table_first() {
    HleGuard table(table_lock_);
    HleGuard stats(stats_lock_);  // EXPECT: lock-order-cycle
    ++generation_;
  }

  void lock_stats_first() {
    HleGuard stats(stats_lock_);
    HleGuard table(table_lock_);  // EXPECT: lock-order-cycle
    ++generation_;
  }

  // Consistent nesting elsewhere must NOT turn this pair into extra
  // diagnostics: only edges inside the cycle are reported.
  void lock_table_only() {
    HleGuard table(table_lock_);
    ++generation_;
  }

  HleSpinLock table_lock_;
  HleSpinLock stats_lock_;
  unsigned long generation_ = 0;
};

}  // namespace ea::concurrent
