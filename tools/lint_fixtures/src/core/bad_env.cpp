// Fixture: trusted code reading the (host-controlled) environment.
#include <cstdlib>

namespace fixture {

bool feature_toggle() {
  const char* v = std::getenv("EA_SECRET_TOGGLE");  // EXPECT: env-read
  return v != nullptr;
}

const char* raw_read() {
  return getenv("EA_OTHER");  // EXPECT: env-read
}

// Identifiers merely *containing* getenv must not fire.
struct Config {
  const char* my_getenv_cache = nullptr;
};
const char* cached(const Config& c) { return c.my_getenv_cache; }

}  // namespace fixture
