// Fixture: trusted code tearing down the whole process instead of throwing
// (which the worker would contain and the supervisor would heal).
#include <cstdlib>

namespace fixture {

void give_up() {
  std::abort();  // EXPECT: process-exit
}

void bail(int code) {
  exit(code);  // EXPECT: process-exit
}

void hard_stop(int code) {
  std::_Exit(code);  // EXPECT: process-exit
}

// Identifiers merely *containing* the names must not fire.
struct Shutdown {
  int exit_code = 0;
  void exit_scope() {}
};
int status(const Shutdown& s) { return s.exit_code; }

}  // namespace fixture
