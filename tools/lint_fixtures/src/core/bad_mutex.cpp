// Fixture: OS blocking synchronisation inside a trusted-capable module.
#include <mutex>  // EXPECT: mutex-blocking-sync

namespace fixture {

std::mutex g_mu;  // EXPECT: mutex-blocking-sync

void critical() {
  std::lock_guard<std::mutex> lock(g_mu);  // EXPECT: mutex-blocking-sync
}

void sleepy_wait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // EXPECT: blocking-syscall
}

void raw_pthread(pthread_mutex_t* mu) {  // EXPECT: mutex-blocking-sync
  pthread_mutex_lock(mu);  // EXPECT: mutex-blocking-sync
}

}  // namespace fixture
