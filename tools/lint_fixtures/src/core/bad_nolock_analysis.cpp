// Fixture: tsa-unjustified. Opting a function out of the Clang thread-safety
// analysis is allowed only with an inline `// tsa: <reason>` on the same or
// the preceding line (DESIGN.md §13); a bare opt-out must be flagged.

namespace ea::core {

struct ProbeCounter {
  // tsa: approximate read tolerated by contract (lock-free count probe).
  int justified_probe() const EA_NO_THREAD_SAFETY_ANALYSIS { return value_; }

  int bare_probe() const EA_NO_THREAD_SAFETY_ANALYSIS { return value_; }  // EXPECT: tsa-unjustified

  int value_ = 0;
};

}  // namespace ea::core
