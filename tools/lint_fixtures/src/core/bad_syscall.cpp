// Fixture: direct syscalls from trusted actor code.
namespace fixture {

int drain(int fd, char* buf, unsigned long len) {
  return static_cast<int>(::read(fd, buf, len));  // EXPECT: blocking-syscall
}

void push(int fd, const char* buf, unsigned long len) {
  ::write(fd, buf, len);  // EXPECT: blocking-syscall
}

int take(int listen_fd) {
  return ::accept(listen_fd, nullptr, nullptr);  // EXPECT: blocking-syscall
}

void backoff() {
  usleep(100);  // EXPECT: blocking-syscall
}

// Member functions *named* like syscalls must not fire (the real tree has
// Socket::close(), Client::connect(), MonotonicCounterService::read()).
struct Socket {
  void close();
  int read(char* buf, int len);
};
void Socket::close() {}
int Socket::read(char*, int) { return 0; }

void member_calls_ok(Socket& s) {
  s.close();
  s.read(nullptr, 0);
}

}  // namespace fixture
