// Fixture: policy.toml exempts this file from heap-alloc (with a reason);
// the seeded allocation below must NOT fire. The syscall still must fire —
// exemptions are per-rule, not per-file blanket passes.
#include <memory>

namespace fixture {

struct Cfg {
  int workers;
};

std::unique_ptr<Cfg> build() { return std::make_unique<Cfg>(); }

void leak_probe(int fd, char* buf, unsigned long len) {
  ::read(fd, buf, len);  // EXPECT: blocking-syscall
}

}  // namespace fixture
