// Fixture: inline waivers suppress diagnostics; none of these may fire.
#include <memory>

namespace fixture {

struct Widget {
  int v;
};

Widget* setup_path() {
  return new Widget();  // ea-lint: allow(heap-alloc) -- pre-start wiring
}

void ocall_shim(int fd, const char* buf, unsigned long len) {
  // ea-lint: allow-next-line(blocking-syscall)
  ::write(fd, buf, len);
}

}  // namespace fixture
