// Fixture: this module is whitelisted as untrusted-side; the host layer may
// block, allocate, and talk to the kernel. Nothing here may fire.
#include <iostream>
#include <memory>
#include <mutex>

namespace fixture {

std::mutex g_table_mu;

int host_accept(int listen_fd) {
  std::lock_guard<std::mutex> lock(g_table_mu);
  return ::accept(listen_fd, nullptr, nullptr);
}

void host_log(const char* what) { std::cout << what << "\n"; }

std::unique_ptr<int> host_alloc() { return std::make_unique<int>(42); }

}  // namespace fixture
