// Fixture: an entry point that announces an epoch and returns without
// leaving. The pinned announcement blocks every future epoch advance, so
// the cleaner's retirement batches never reach their safety horizon and
// the store leaks until it fills. The `epoch-pairing` rule must fire on
// the unmatched enter; the balanced and RAII-waived functions below must
// stay clean.

namespace fixture {

struct Store {
  void epoch_enter();
  void epoch_leave() noexcept;
  bool lookup_raw(int key);
};

bool leaky_lookup(Store& store, int key) {
  store.epoch_enter();  // EXPECT: epoch-pairing
  return store.lookup_raw(key);  // early return skips the leave
}

bool balanced_lookup(Store& store, int key) {
  store.epoch_enter();
  const bool hit = store.lookup_raw(key);
  store.epoch_leave();
  return hit;
}

class Section {
 public:
  // ea-lint: allow-next-line(epoch-pairing) -- RAII half, paired below.
  explicit Section(Store& store) : store_(&store) { store_->epoch_enter(); }
  // ea-lint: allow-next-line(epoch-pairing) -- RAII pair of the ctor.
  ~Section() { store_->epoch_leave(); }

 private:
  Store* store_;
};

}  // namespace fixture
