// Fixture: iostream / stdio on trusted paths.
#include <iostream>  // EXPECT: iostream

namespace fixture {

void report(int value) {
  std::cout << "value=" << value << "\n";  // EXPECT: iostream
  printf("value=%d\n", value);             // EXPECT: iostream
}

// snprintf formats into a caller buffer without locks or syscalls — the
// logging layer uses it — and must NOT fire.
int format_ok(char* buf, unsigned long n, int value) {
  return snprintf(buf, n, "value=%d", value);
}

// Tokens inside comments and string literals must NOT fire:
// std::cout << "printf( ::read( std::mutex";
const char* decoy() { return "std::cerr ::write( #include <iostream>"; }

}  // namespace fixture
