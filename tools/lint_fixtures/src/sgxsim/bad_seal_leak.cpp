// Fixture: a migration-style helper that unseals a rollback bundle into
// util::Bytes locals and returns without wiping them. The plaintext — an
// actor's exported private state — stays resident in untrusted host memory
// after the function exits, readable long after the enclave that produced
// it is gone. The `seal-plaintext-zeroize` rule must fire on the unseal
// call; the wiped variants below (direct and through a cleanup lambda)
// must stay clean.

namespace util {
struct Bytes {
  unsigned char* data();
  unsigned long size() const;
};
void secure_zero(Bytes& buffer);
}  // namespace util

namespace fixture {

util::Bytes seal(const util::Bytes& plain);
util::Bytes unseal(const util::Bytes& blob);
bool import_state(const util::Bytes& state);

bool leaky_restore(const util::Bytes& blob) {
  util::Bytes plain = unseal(blob);  // EXPECT: seal-plaintext-zeroize
  return import_state(plain);  // plaintext state left behind on return
}

bool wiped_restore(const util::Bytes& blob) {
  util::Bytes plain = unseal(blob);
  const bool ok = import_state(plain);
  util::secure_zero(plain);
  return ok;
}

bool lambda_wiped_restore(const util::Bytes& blob) {
  util::Bytes plain = unseal(blob);
  auto wipe = [&plain] { util::secure_zero(plain); };
  const bool ok = import_state(plain);
  wipe();
  return ok;
}

}  // namespace fixture
