// Fixture: raw pointers smuggled across the enclave boundary inside a node
// payload, bypassing Node/Channel ownership.
#include <cstring>

namespace fixture {

struct Node {
  unsigned char* payload() { return bytes; }
  unsigned char bytes[256];
};

struct SecretState {
  int x;
};

// This struct's bytes are memcpy'd into a node payload below, so pointer
// members would leak untrusted-addressable pointers into the enclave (or
// enclave pointers out of it).
struct BadFrame {
  unsigned long long request_id;
  SecretState* state;  // EXPECT: payload-raw-pointer
  const char* label;   // EXPECT: payload-raw-pointer
  int count;

  // Member functions with pointer/reference signatures must NOT fire.
  SecretState* get_state() const { return state; }
};

// A value-only frame must NOT fire.
struct GoodFrame {
  unsigned long long request_id;
  char label[32];
  int count;
};

void send_frames(Node& n, const BadFrame& bad, const GoodFrame& good) {
  std::memcpy(n.payload(), &bad, sizeof(BadFrame));
  std::memcpy(n.payload(), &good, sizeof(GoodFrame));
}

}  // namespace fixture
